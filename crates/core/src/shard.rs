//! Sharded multi-writer engine over the LRD hierarchy.
//!
//! [`ShardedEngine`] partitions the sparsifier by top-level LRD clusters
//! into `S` independent [`InGrassEngine`]s — each with its own ledger,
//! drift tracker, ordering cache, and Cholesky factor — and routes every
//! intra-cluster [`UpdateOp`] to its owning shard through a deterministic
//! [`ShardRouting`] table derived from the hierarchy (rebuilt on every
//! drift re-setup). Cross-shard edges never enter a shard engine and
//! live in the coordinator's [`BoundaryGraph`] instead.
//!
//! # Commit protocol
//!
//! [`ShardedEngine::apply_batch`] runs a three-step epoch-fenced commit:
//!
//! 1. **Partition** — the batch is validated atomically and routed into
//!    per-shard op lists plus a coordinator-owned boundary list.
//! 2. **Parallel apply** — every shard with routed work runs its own
//!    [`InGrassEngine::apply_batch`] on an `ingrass-par` worker (shard
//!    RNG streams were isolated at setup via `derive_seed`), and all
//!    workers join at the **epoch fence**.
//! 3. **Commit** — per-shard [`UpdateReport`]s are merged in ascending
//!    shard-index order (a shard error propagates from the lowest index
//!    *before* any coordinator state moves), boundary ops apply
//!    single-threaded after the fence, and the drift decision is taken
//!    from the *merged* post-fence state — so a triggered
//!    [`ShardedEngine::resetup`] moves every shard across the same epoch
//!    boundary.
//!
//! Publishing stitches the per-shard sparsifiers back together: the
//! assembled graph's grounded Laplacian is solved exactly by a
//! Schur-complement block factor ([`StitchedPrecond`] — per-shard interior
//! back-substitution, a dense boundary solve, and a correction pass),
//! wrapped in the same [`SparsifierSnapshot`] the single-writer
//! [`crate::SnapshotEngine`] publishes. Readers, the solve layer, the
//! perf harness, and persistence therefore work unchanged.
//!
//! # Determinism
//!
//! Everything is bit-for-bit identical at any `INGRASS_THREADS` width for
//! a fixed shard count: routing is a pure function of the hierarchy and
//! the edge list, shard batches are disjoint and land by shard index,
//! the boundary graph iterates in canonical `BTreeMap` order, and the
//! stitched factor's parallel stages place every result by index.

mod boundary;
mod routing;
mod stitch;

pub use boundary::BoundaryGraph;
pub use routing::ShardRouting;
pub use stitch::StitchedPrecond;

use crate::config::{DriftPolicy, SetupConfig, UpdateConfig};
use crate::engine::InGrassEngine;
use crate::error::InGrassError;
use crate::ledger::{ResetupReason, UpdateOp};
use crate::lrd::{LrdHierarchy, LrdLevel};
use crate::report::{PhaseTimer, UpdateReport};
use crate::snapshot::{
    PublishReport, SnapshotCell, SnapshotPrecond, SnapshotReader, SparsifierSnapshot,
};
use crate::Result;
use ingrass_graph::{DisjointSets, Graph, NodeId};
use ingrass_metrics::{LatencyHistogram, LatencySummary, ShardStats};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a [`ShardedEngine`]: how many shards to split the
/// hierarchy into and how wide to fan their batches out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedConfig {
    /// Requested shard count (clamped to the node count at setup; the
    /// effective count is [`ShardedEngine::shards`]). Must be ≥ 1.
    pub shards: usize,
    /// Worker threads for per-shard batch application and stitched-factor
    /// builds; `None` uses the ambient `INGRASS_THREADS` width. Results
    /// are identical at any width.
    pub threads: Option<usize>,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            threads: None,
        }
    }
}

impl ShardedConfig {
    /// Checks the configuration is inside its domain.
    ///
    /// # Errors
    /// [`InGrassError::InvalidConfig`] if `shards == 0` or
    /// `threads == Some(0)`.
    pub fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(InGrassError::InvalidConfig(
                "shard count must be ≥ 1".to_string(),
            ));
        }
        if self.threads == Some(0) {
            return Err(InGrassError::InvalidConfig(
                "thread override must be ≥ 1 (use None for the ambient width)".to_string(),
            ));
        }
        Ok(())
    }

    /// Returns the configuration with [`ShardedConfig::shards`] replaced.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Returns the configuration with [`ShardedConfig::threads`] replaced.
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }
}

/// What one [`ShardedEngine::apply_batch`] did: routing counts, the
/// coordinator's boundary-op outcomes, and each shard engine's own report.
#[derive(Debug, Clone)]
pub struct ShardedBatchReport {
    /// Operations in the batch.
    pub batch_size: usize,
    /// Operations routed to a shard engine (both endpoints on one shard).
    pub intra_ops: usize,
    /// Operations handled by the coordinator (endpoints on two shards).
    pub boundary_ops: usize,
    /// Cross-shard edges inserted into (or merged onto) the boundary graph.
    pub boundary_inserted: usize,
    /// Cross-shard edges deleted from the boundary graph.
    pub boundary_deleted: usize,
    /// Cross-shard edges reweighted in place.
    pub boundary_reweighted: usize,
    /// Boundary deletions that would have disconnected the shard quotient
    /// and were converted into re-link edges of weight `min(w, 1/R̂)`.
    pub boundary_relinked: usize,
    /// Boundary deletes/reweights of edges the boundary never carried.
    pub boundary_vacuous: usize,
    /// Per-shard engine reports, by shard index; `None` where the batch
    /// routed no operations.
    pub shard_reports: Vec<Option<UpdateReport>>,
    /// Whether this batch's drift crossed the policy on any shard (or the
    /// boundary) and triggered a global re-setup, and why.
    pub resetup: Option<ResetupReason>,
    /// Workers the parallel apply phase fanned out over
    /// (`min(threads, shards)`; 1 when no shard received work).
    pub fence_width: usize,
    /// Wall-clock span of the parallel apply phase: fan-out to epoch
    /// fence, i.e. the slowest shard's apply on a multi-core host. Zero
    /// when the batch routed no intra-shard work.
    pub parallel_wall_s: f64,
    /// Batch wall time (includes the re-setup, when one triggered).
    pub elapsed: Duration,
}

/// A sharded multi-writer over the LRD hierarchy: `S` independent
/// [`InGrassEngine`]s behind one deterministic router, publishing
/// [`SparsifierSnapshot`]s stitched by a Schur-complement block factor.
///
/// The writer API mirrors [`crate::SnapshotEngine`]
/// ([`ShardedEngine::apply_batch`], [`ShardedEngine::resetup`]) with one
/// deliberate difference: publication is **explicit**
/// ([`ShardedEngine::publish`]). A stitched factor is always a full
/// rebuild (there is no incremental patch tier across shard boundaries),
/// so the coordinator lets callers batch many shard-parallel applies per
/// publish instead of paying a rebuild per batch.
///
/// # Example
///
/// ```
/// use ingrass::{SetupConfig, ShardedConfig, ShardedEngine, UpdateConfig, UpdateOp};
/// use ingrass_gen::{grid_2d, WeightModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let h0 = grid_2d(8, 8, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 1);
/// let mut engine = ShardedEngine::setup(&h0, &SetupConfig::default(),
///     &ShardedConfig::default().with_shards(2))?;
/// let reader = engine.reader();
///
/// engine.apply_batch(
///     &[UpdateOp::Insert { u: 0, v: 9, weight: 0.5 }],
///     &UpdateConfig::default(),
/// )?;
/// let report = engine.publish()?;
/// assert!(report.shard.is_some());
/// assert_eq!(reader.current().sequence(), report.sequence);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    setup_cfg: SetupConfig,
    shard_cfg: ShardedConfig,
    /// The current epoch's global hierarchy (routing + resistance bounds
    /// for boundary re-links); rebuilt at every global re-setup.
    hierarchy: Arc<LrdHierarchy>,
    routing: ShardRouting,
    engines: Vec<InGrassEngine>,
    boundary: BoundaryGraph,
    cell: Arc<SnapshotCell>,
    sequence: u64,
    /// Coordinator epoch: global re-setups so far. Shard engines run with
    /// drift disabled, so their own epochs never move.
    epoch: u64,
    version: u64,
    instance_id: u64,
    updates_applied: usize,
    publishes_rebuilt: u64,
    boundary_relinks: u64,
    /// Boundary weight baseline of the epoch: the total at the last
    /// (re)setup plus everything inserted or re-linked since — the
    /// denominator of the boundary's deleted-weight drift fraction.
    boundary_epoch_weight: f64,
    boundary_deleted_weight: f64,
    per_shard_update: Vec<LatencySummary>,
    per_shard_hist: Vec<LatencyHistogram>,
    /// One sample per batch with shard work: the fan-out→fence span.
    parallel_update: LatencySummary,
    per_shard_ops: Vec<u64>,
}

/// Reassembles the global sparsifier: every shard's sparsifier mapped
/// back to global ids, plus the boundary edges. Shard subgraphs and the
/// boundary partition the edge set, so no pair collides; iteration order
/// (shard index, then edge id, then canonical boundary order) is fixed.
fn assemble_graph(
    routing: &ShardRouting,
    engines: &[InGrassEngine],
    boundary: &BoundaryGraph,
) -> Result<Graph> {
    let n = routing.num_nodes();
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    for (sh, eng) in engines.iter().enumerate() {
        let globals = routing.global_of(sh);
        let sub = eng.sparsifier_graph();
        for e in sub.edges() {
            edges.push((
                globals[e.u.index()] as usize,
                globals[e.v.index()] as usize,
                e.weight,
            ));
        }
    }
    for (u, v, w) in boundary.iter() {
        edges.push((u as usize, v as usize, w));
    }
    Ok(Graph::from_edges(n, &edges)?)
}

/// Maps an op's endpoints through a local-id table, keeping the variant.
fn remap(op: UpdateOp, u: usize, v: usize) -> UpdateOp {
    match op {
        UpdateOp::Insert { weight, .. } => UpdateOp::Insert { u, v, weight },
        UpdateOp::Delete { .. } => UpdateOp::Delete { u, v },
        UpdateOp::Reweight { weight, .. } => UpdateOp::Reweight { u, v, weight },
    }
}

impl ShardedEngine {
    /// Builds the global hierarchy for `h0`, partitions it into shards,
    /// runs per-shard engine setup, and publishes the initial stitched
    /// snapshot (sequence 1).
    ///
    /// Each shard engine runs on the shard's induced subgraph with a seed
    /// derived from `cfg.seed` and its shard index, and with drift
    /// disabled — the coordinator owns the drift policy, because a shard
    /// re-setup would rebuild a hierarchy the router no longer matches.
    ///
    /// # Errors
    /// As for [`crate::InGrassEngine::setup`] (disconnected or empty
    /// input, invalid configuration), plus [`ShardedConfig::validate`].
    pub fn setup(h0: &Graph, cfg: &SetupConfig, shard_cfg: &ShardedConfig) -> Result<Self> {
        shard_cfg.validate()?;
        let edge_resistance = InGrassEngine::estimate_edge_resistances(h0, cfg)?;
        let hierarchy = Arc::new(LrdHierarchy::build(
            h0,
            &edge_resistance,
            cfg.initial_diameter,
            cfg.diameter_growth,
            cfg.max_levels,
        )?);
        let routing = ShardRouting::build(&hierarchy, h0, shard_cfg.shards);
        let (engines, boundary) = Self::split(h0, &routing, cfg)?;
        let s = routing.shards();
        let instance_id = crate::engine::next_instance_id();
        let boundary_epoch_weight = boundary.total_weight();
        let threads = shard_cfg
            .threads
            .unwrap_or_else(ingrass_par::num_threads)
            .max(1);
        let snap = build_snapshot(
            instance_id,
            0,
            0,
            1,
            &routing,
            &engines,
            &boundary,
            &hierarchy,
            threads,
        )?;
        Ok(ShardedEngine {
            setup_cfg: cfg.clone(),
            shard_cfg: *shard_cfg,
            hierarchy,
            routing,
            engines,
            boundary,
            cell: Arc::new(SnapshotCell::new(Arc::new(snap))),
            sequence: 1,
            epoch: 0,
            version: 0,
            instance_id,
            updates_applied: 0,
            publishes_rebuilt: 1,
            boundary_relinks: 0,
            boundary_epoch_weight,
            boundary_deleted_weight: 0.0,
            per_shard_update: vec![LatencySummary::new(); s],
            per_shard_hist: vec![LatencyHistogram::new(); s],
            parallel_update: LatencySummary::new(),
            per_shard_ops: vec![0; s],
        })
    }

    /// Splits `g` along the routing table: intra-shard edges become each
    /// shard's induced subgraph (local ids), cross-shard edges the
    /// boundary graph. Runs per-shard engine setup.
    fn split(
        g: &Graph,
        routing: &ShardRouting,
        cfg: &SetupConfig,
    ) -> Result<(Vec<InGrassEngine>, BoundaryGraph)> {
        let s = routing.shards();
        let mut per: Vec<Vec<(usize, usize, f64)>> = vec![Vec::new(); s];
        let mut boundary = BoundaryGraph::new();
        for e in g.edges() {
            let (u, v) = (e.u.index(), e.v.index());
            let (su, sv) = (routing.shard_of(u), routing.shard_of(v));
            if su == sv {
                per[su].push((routing.local_of(u), routing.local_of(v), e.weight));
            } else {
                boundary.insert(u, v, e.weight);
            }
        }
        let mut engines = Vec::with_capacity(s);
        for (sh, edges) in per.iter().enumerate() {
            let sub = Graph::from_edges(routing.global_of(sh).len(), edges)?;
            let shard_cfg = cfg
                .clone()
                .with_seed(ingrass_par::derive_seed(cfg.seed, sh as u64))
                .with_drift(DriftPolicy::never());
            engines.push(InGrassEngine::setup(&sub, &shard_cfg)?);
        }
        Ok((engines, boundary))
    }

    /// Applies one update batch through the epoch-fenced commit protocol
    /// (see the module docs): validates it atomically, partitions it into
    /// per-shard op lists and a boundary list, runs every non-empty shard
    /// batch concurrently on its own `ingrass-par` worker, joins at the
    /// epoch fence, then commits — merging per-shard reports in ascending
    /// shard-index order, applying the cross-shard boundary ops
    /// single-threaded *after* the fence, and consulting the drift policy
    /// across the merged state — a trip re-runs the *global* setup (fresh
    /// hierarchy, fresh routing, fresh shard engines) before this call
    /// returns, so every shard crosses the same epoch boundary.
    ///
    /// The outcome is bit-identical at any worker width for a fixed shard
    /// count: shard batches are disjoint, each shard's RNG stream was
    /// derived from its index at setup, results land by shard index at
    /// the fence, and boundary ops touch an edge set no shard engine
    /// carries.
    ///
    /// The published snapshot does **not** move; call
    /// [`ShardedEngine::publish`] when readers should see the new state.
    ///
    /// # Errors
    /// As for [`crate::InGrassEngine::apply_batch`]: invalid config or an
    /// op referencing an unknown node, a self-loop, or a non-positive
    /// weight. The batch is validated up front, so no shard engine
    /// mutates on invalid input; a shard error surfacing at the fence
    /// (unreachable while that validation matches the engine's own)
    /// propagates from the lowest shard index before the commit step
    /// touches any coordinator state.
    pub fn apply_batch(
        &mut self,
        ops: &[UpdateOp],
        cfg: &UpdateConfig,
    ) -> Result<ShardedBatchReport> {
        let timer = PhaseTimer::start();
        if cfg.target_condition < 2.0 {
            return Err(InGrassError::InvalidConfig(format!(
                "target condition must be ≥ 2, got {}",
                cfg.target_condition
            )));
        }
        let n = self.routing.num_nodes();
        for op in ops {
            let (u, v) = op.endpoints();
            if u >= n || v >= n {
                return Err(InGrassError::Graph(format!(
                    "edge ({u},{v}) out of bounds for {n} nodes"
                )));
            }
            if u == v {
                return Err(InGrassError::Graph(format!("self-loop at node {u}")));
            }
            if let Some(w) = op.weight() {
                if w <= 0.0 || !w.is_finite() {
                    return Err(InGrassError::Graph(format!(
                        "edge ({u},{v}) has invalid weight {w}"
                    )));
                }
            }
        }

        let s = self.routing.shards();
        let mut shard_batches: Vec<Vec<UpdateOp>> = vec![Vec::new(); s];
        let mut boundary_ops: Vec<UpdateOp> = Vec::new();
        for &op in ops {
            let (u, v) = op.endpoints();
            let (su, sv) = (self.routing.shard_of(u), self.routing.shard_of(v));
            if su == sv {
                shard_batches[su].push(remap(
                    op,
                    self.routing.local_of(u),
                    self.routing.local_of(v),
                ));
            } else {
                boundary_ops.push(op);
            }
        }

        let mut report = ShardedBatchReport {
            batch_size: ops.len(),
            intra_ops: ops.len() - boundary_ops.len(),
            boundary_ops: boundary_ops.len(),
            boundary_inserted: 0,
            boundary_deleted: 0,
            boundary_reweighted: 0,
            boundary_relinked: 0,
            boundary_vacuous: 0,
            shard_reports: vec![None; s],
            resetup: None,
            fence_width: 1,
            parallel_wall_s: 0.0,
            elapsed: Duration::ZERO,
        };

        // ---- Parallel apply: per-shard batches fan out round-robin over
        // `width` pool jobs; each job walks its shards in ascending index
        // order and every result lands by shard index at the fence, so
        // any width yields identical state. Shard engines never touch the
        // boundary graph or each other, so the workers share nothing.
        let threads = self.threads();
        let width = threads.min(s).max(1);
        report.fence_width = width;
        let mut jobs: Vec<Vec<(usize, &mut InGrassEngine, Vec<UpdateOp>)>> =
            (0..width).map(|_| Vec::new()).collect();
        let mut shard_jobs = 0usize;
        for (sh, (eng, batch)) in self.engines.iter_mut().zip(shard_batches).enumerate() {
            if batch.is_empty() {
                continue;
            }
            jobs[sh % width].push((sh, eng, batch));
            shard_jobs += 1;
        }
        let fence_timer = PhaseTimer::start();
        let mut outs: Vec<Vec<(usize, Result<UpdateReport>, f64)>> =
            (0..width).map(|_| Vec::new()).collect();
        if shard_jobs > 0 {
            ingrass_par::scope_with(width, |scope| {
                for (job, out) in jobs.into_iter().zip(outs.iter_mut()) {
                    scope.execute(move || {
                        for (sh, eng, batch) in job {
                            let shard_timer = PhaseTimer::start();
                            let res = eng.apply_batch(&batch, cfg);
                            out.push((sh, res, shard_timer.total().as_secs_f64()));
                        }
                    });
                }
            });
        }

        // ---- Epoch fence: every worker has joined. Merge the per-shard
        // outcomes deterministically by ascending shard index; an error
        // (unreachable while the up-front validation above matches the
        // engine's own) propagates from the lowest shard index before the
        // commit step below touches any coordinator state — the boundary
        // graph, the op counters, and the drift ledgers stay put.
        if shard_jobs > 0 {
            report.parallel_wall_s = fence_timer.total().as_secs_f64();
        }
        let mut merged: Vec<Option<(Result<UpdateReport>, f64)>> = (0..s).map(|_| None).collect();
        for (sh, res, wall) in outs.into_iter().flatten() {
            merged[sh] = Some((res, wall));
        }
        if let Some((Err(e), _)) = merged.iter().flatten().find(|(res, _)| res.is_err()) {
            return Err(e.clone());
        }

        // ---- Commit: record the merged reports and walls, apply the
        // cross-shard boundary ops single-threaded (they touch an edge
        // set no shard engine carries, so applying them after the fence
        // leaves the final state identical to any interleaving), then
        // take the drift decision from the merged post-fence state.
        for (sh, slot) in merged.into_iter().enumerate() {
            let Some((res, wall)) = slot else { continue };
            let rep = res.expect("fence propagated every shard error");
            self.per_shard_update[sh].record(wall);
            self.per_shard_hist[sh].record(wall);
            self.per_shard_ops[sh] += rep.batch_size as u64;
            report.shard_reports[sh] = Some(rep);
        }
        if shard_jobs > 0 {
            self.parallel_update.record(report.parallel_wall_s);
        }
        for op in &boundary_ops {
            self.apply_boundary_op(*op, &mut report);
        }

        self.updates_applied += ops.len();
        if !ops.is_empty() {
            self.version += 1;
        }

        if let Some(reason) = self.drift_tripped() {
            self.resetup()?;
            report.resetup = Some(reason);
        }
        report.elapsed = timer.total();
        Ok(report)
    }

    /// Applies one cross-shard op to the boundary graph, converting a
    /// quotient-disconnecting deletion into a re-link of weight
    /// `min(w, 1/R̂(u,v))` — the same alternative-path conductance bound
    /// the shard engines use for bridge deletions.
    fn apply_boundary_op(&mut self, op: UpdateOp, report: &mut ShardedBatchReport) {
        match op {
            UpdateOp::Insert { u, v, weight } => {
                self.boundary.insert(u, v, weight);
                self.boundary_epoch_weight += weight;
                report.boundary_inserted += 1;
            }
            UpdateOp::Delete { u, v } => match self.boundary.remove(u, v) {
                Some(w) => {
                    self.boundary_deleted_weight += w;
                    report.boundary_deleted += 1;
                    if !self.quotient_connected() {
                        let r = self
                            .hierarchy
                            .resistance_bound(NodeId::new(u), NodeId::new(v));
                        let alt = if r.is_finite() && r > 0.0 { 1.0 / r } else { w };
                        let relink = w.min(alt).max(f64::MIN_POSITIVE);
                        self.boundary.insert(u, v, relink);
                        self.boundary_epoch_weight += relink;
                        self.boundary_relinks += 1;
                        report.boundary_relinked += 1;
                    }
                }
                None => report.boundary_vacuous += 1,
            },
            UpdateOp::Reweight { u, v, weight } => {
                if self.boundary.set_weight(u, v, weight) {
                    report.boundary_reweighted += 1;
                } else {
                    report.boundary_vacuous += 1;
                }
            }
        }
    }

    /// Whether the shard quotient (shards as supernodes, boundary edges
    /// between them) is connected — the invariant that keeps the
    /// assembled sparsifier connected, given each shard engine keeps its
    /// own subgraph connected.
    fn quotient_connected(&self) -> bool {
        let s = self.routing.shards();
        if s <= 1 {
            return true;
        }
        let mut ds = DisjointSets::new(s);
        for (u, v, _) in self.boundary.iter() {
            ds.union(
                self.routing.shard_of(u as usize),
                self.routing.shard_of(v as usize),
            );
        }
        ds.num_sets() == 1
    }

    /// Coordinator drift check: any shard ledger over the user's policy,
    /// or the boundary's own deleted-weight fraction over the same knob.
    fn drift_tripped(&self) -> Option<ResetupReason> {
        let policy = &self.setup_cfg.drift;
        if !policy.auto_resetup {
            return None;
        }
        if self.boundary_epoch_weight > 0.0
            && self.boundary_deleted_weight / self.boundary_epoch_weight
                > policy.max_deleted_weight_fraction
        {
            return Some(ResetupReason::DeletedWeight);
        }
        self.engines
            .iter()
            .find_map(|eng| eng.ledger().should_resetup(policy))
    }

    /// Re-runs the global setup on the assembled sparsifier: fresh
    /// resistance estimates, hierarchy, routing table, shard engines, and
    /// boundary graph. Bumps the coordinator epoch (readers keep serving
    /// the previous epoch's snapshot until the next
    /// [`ShardedEngine::publish`]).
    ///
    /// # Errors
    /// As for [`crate::InGrassEngine::setup`] on the assembled graph.
    pub fn resetup(&mut self) -> Result<()> {
        let graph = assemble_graph(&self.routing, &self.engines, &self.boundary)?;
        let edge_resistance = InGrassEngine::estimate_edge_resistances(&graph, &self.setup_cfg)?;
        let hierarchy = Arc::new(LrdHierarchy::build(
            &graph,
            &edge_resistance,
            self.setup_cfg.initial_diameter,
            self.setup_cfg.diameter_growth,
            self.setup_cfg.max_levels,
        )?);
        let routing = ShardRouting::build(&hierarchy, &graph, self.shard_cfg.shards);
        let (engines, boundary) = Self::split(&graph, &routing, &self.setup_cfg)?;
        self.hierarchy = hierarchy;
        self.routing = routing;
        self.engines = engines;
        self.boundary_epoch_weight = boundary.total_weight();
        self.boundary_deleted_weight = 0.0;
        self.boundary = boundary;
        self.epoch += 1;
        self.version += 1;
        Ok(())
    }

    /// Stitches the current per-shard state into a fresh
    /// [`SparsifierSnapshot`] and swaps it in as the current one. Always a
    /// full rebuild (interior factors + boundary Schur complement); the
    /// report carries the merged [`ShardStats`] in
    /// [`PublishReport::shard`].
    ///
    /// # Errors
    /// [`InGrassError::BadSparsifier`] if an interior block or the
    /// boundary Schur complement is not SPD — cannot happen while the
    /// shard-connectivity and quotient-connectivity invariants hold.
    pub fn publish(&mut self) -> Result<PublishReport> {
        let timer = PhaseTimer::start();
        let snap = Arc::new(build_snapshot(
            self.instance_id,
            self.epoch,
            self.version,
            self.sequence + 1,
            &self.routing,
            &self.engines,
            &self.boundary,
            &self.hierarchy,
            self.threads(),
        )?);
        self.sequence += 1;
        self.publishes_rebuilt += 1;
        let report = PublishReport {
            epoch: snap.epoch(),
            version: snap.version(),
            sequence: snap.sequence(),
            publish_seconds: timer.total().as_secs_f64(),
            factor_nnz: snap.preconditioner().factor_nnz(),
            factor_flops: snap.preconditioner().factor_flops(),
            edges: snap.resistance_summary().edges,
            factor_updated: false,
            factor_updates: 0,
            factor_refactors: self.publishes_rebuilt,
            shard: Some(self.shard_stats()),
        };
        self.cell.store(snap);
        Ok(report)
    }

    /// A new reader subscription — the same handle type
    /// [`crate::SnapshotEngine::reader`] hands out, so the solve service
    /// and perf harness consume sharded snapshots unchanged.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader::from_cell(Arc::clone(&self.cell))
    }

    /// The most recently published snapshot.
    pub fn snapshot(&self) -> Arc<SparsifierSnapshot> {
        self.cell.load()
    }

    /// The assembled global sparsifier: every shard's sparsifier mapped
    /// to global ids, plus the boundary edges.
    ///
    /// # Errors
    /// Graph assembly failure (cannot happen while routing invariants
    /// hold — the edge partitions are disjoint and in bounds).
    pub fn assembled_graph(&self) -> Result<Graph> {
        assemble_graph(&self.routing, &self.engines, &self.boundary)
    }

    /// Merged per-shard work statistics since setup (or restore).
    pub fn shard_stats(&self) -> ShardStats {
        ShardStats::from_shards(
            &self.per_shard_update,
            &self.per_shard_hist,
            &self.parallel_update,
            &self.per_shard_ops,
            self.boundary.len(),
            self.boundary.node_count(),
        )
    }

    /// Effective shard count (after clamping to the node count).
    pub fn shards(&self) -> usize {
        self.routing.shards()
    }

    /// The routing table in effect (rebuilt at every re-setup).
    pub fn routing(&self) -> &ShardRouting {
        &self.routing
    }

    /// The cross-shard boundary graph.
    pub fn boundary(&self) -> &BoundaryGraph {
        &self.boundary
    }

    /// The current epoch's global LRD hierarchy.
    pub fn hierarchy(&self) -> &LrdHierarchy {
        &self.hierarchy
    }

    /// Read access to one shard's engine (stats, ledger).
    pub fn shard_engine(&self, shard: usize) -> &InGrassEngine {
        &self.engines[shard]
    }

    /// Nodes in the routed graph.
    pub fn num_nodes(&self) -> usize {
        self.routing.num_nodes()
    }

    /// Coordinator epoch: global re-setups so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Monotone state version (bumps per non-empty batch and re-setup).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Process-unique coordinator identity (same namespace as
    /// [`crate::InGrassEngine::instance_id`]).
    pub fn instance_id(&self) -> u64 {
        self.instance_id
    }

    /// Snapshots published so far (including the one from setup).
    pub fn publishes(&self) -> u64 {
        self.sequence
    }

    /// Operations routed through [`ShardedEngine::apply_batch`] so far.
    pub fn updates_applied(&self) -> usize {
        self.updates_applied
    }

    /// Boundary deletions converted into re-link edges so far.
    pub fn boundary_relinks(&self) -> u64 {
        self.boundary_relinks
    }

    fn threads(&self) -> usize {
        self.shard_cfg
            .threads
            .unwrap_or_else(ingrass_par::num_threads)
            .max(1)
    }

    /// Exports the coordinator's complete state for persistence: every
    /// shard engine, the routing assignment, the boundary edge list, the
    /// global hierarchy, and the drift counters.
    /// [`ShardedEngine::from_state`] is its inverse. Per-shard latency
    /// summaries are process-local measurements and restart empty.
    pub fn export_state(&self) -> crate::state::ShardedState {
        crate::state::ShardedState {
            shards: self.engines.iter().map(|e| e.export_state()).collect(),
            shard_of: self.routing.shard_of_slice().to_vec(),
            routing_level: self.routing.level(),
            boundary_edges: self.boundary.to_edges(),
            levels: self
                .hierarchy
                .levels()
                .iter()
                .map(|lvl| crate::state::LrdLevelState {
                    cluster_of: lvl.cluster_of.clone(),
                    diameter: lvl.diameter.clone(),
                    size: lvl.size.clone(),
                    num_clusters: lvl.num_clusters,
                    threshold: lvl.threshold,
                })
                .collect(),
            setup_cfg: self.setup_cfg.clone(),
            shard_count: self.shard_cfg.shards,
            threads: self.shard_cfg.threads,
            sequence: self.sequence,
            epoch: self.epoch,
            version: self.version,
            updates_applied: self.updates_applied,
            boundary_relinks: self.boundary_relinks,
            boundary_epoch_weight: self.boundary_epoch_weight,
            boundary_deleted_weight: self.boundary_deleted_weight,
            per_shard_ops: self.per_shard_ops.clone(),
        }
    }

    /// Restores a sharded engine from persisted state and republishes the
    /// restored view as the current snapshot (at the *restored* sequence
    /// number — restoring is not a publish).
    ///
    /// # Errors
    /// [`InGrassError::InvalidConfig`] / [`InGrassError::BadSparsifier`]
    /// if any shard state fails validation or the routing, hierarchy, and
    /// shard shapes disagree.
    pub fn from_state(state: crate::state::ShardedState) -> Result<Self> {
        let s = state.shards.len();
        if s == 0 {
            return Err(InGrassError::InvalidConfig(
                "sharded state carries no shard engines".to_string(),
            ));
        }
        if state.per_shard_ops.len() != s {
            return Err(InGrassError::InvalidConfig(format!(
                "per-shard op counters cover {} shards, state has {}",
                state.per_shard_ops.len(),
                s
            )));
        }
        let shard_cfg = ShardedConfig {
            shards: state.shard_count,
            threads: state.threads,
        };
        shard_cfg.validate()?;
        let hierarchy = Arc::new(LrdHierarchy::from_levels(
            state
                .levels
                .into_iter()
                .map(|lvl| LrdLevel {
                    cluster_of: lvl.cluster_of,
                    diameter: lvl.diameter,
                    size: lvl.size,
                    num_clusters: lvl.num_clusters,
                    threshold: lvl.threshold,
                })
                .collect(),
        )?);
        if hierarchy.num_nodes() != state.shard_of.len() {
            return Err(InGrassError::InvalidConfig(format!(
                "hierarchy labels {} nodes, routing covers {}",
                hierarchy.num_nodes(),
                state.shard_of.len()
            )));
        }
        if let Some(&bad) = state.shard_of.iter().find(|&&sh| sh as usize >= s) {
            return Err(InGrassError::InvalidConfig(format!(
                "routing references shard {bad}, state has {s}"
            )));
        }
        let routing = ShardRouting::from_shard_of(state.shard_of, s, state.routing_level);
        let mut engines = Vec::with_capacity(s);
        for (sh, eng_state) in state.shards.into_iter().enumerate() {
            let eng = InGrassEngine::from_state(eng_state)?;
            if eng.sparsifier().num_nodes() != routing.global_of(sh).len() {
                return Err(InGrassError::InvalidConfig(format!(
                    "shard {sh} engine covers {} nodes, routing assigns {}",
                    eng.sparsifier().num_nodes(),
                    routing.global_of(sh).len()
                )));
            }
            engines.push(eng);
        }
        let n = routing.num_nodes();
        for &(u, v, _) in &state.boundary_edges {
            if u as usize >= n || v as usize >= n {
                return Err(InGrassError::InvalidConfig(format!(
                    "boundary edge ({u},{v}) out of bounds for {n} nodes"
                )));
            }
            if routing.shard_of(u as usize) == routing.shard_of(v as usize) {
                return Err(InGrassError::InvalidConfig(format!(
                    "boundary edge ({u},{v}) joins two nodes of shard {}",
                    routing.shard_of(u as usize)
                )));
            }
        }
        let boundary = BoundaryGraph::from_edges(&state.boundary_edges);
        let threads = state
            .threads
            .unwrap_or_else(ingrass_par::num_threads)
            .max(1);
        let instance_id = crate::engine::next_instance_id();
        let snap = build_snapshot(
            instance_id,
            state.epoch,
            state.version,
            state.sequence,
            &routing,
            &engines,
            &boundary,
            &hierarchy,
            threads,
        )?;
        Ok(ShardedEngine {
            setup_cfg: state.setup_cfg,
            shard_cfg,
            hierarchy,
            routing,
            engines,
            boundary,
            cell: Arc::new(SnapshotCell::new(Arc::new(snap))),
            sequence: state.sequence,
            epoch: state.epoch,
            version: state.version,
            instance_id,
            updates_applied: state.updates_applied,
            publishes_rebuilt: state.sequence,
            boundary_relinks: state.boundary_relinks,
            boundary_epoch_weight: state.boundary_epoch_weight,
            boundary_deleted_weight: state.boundary_deleted_weight,
            per_shard_update: vec![LatencySummary::new(); s],
            per_shard_hist: vec![LatencyHistogram::new(); s],
            parallel_update: LatencySummary::new(),
            per_shard_ops: state.per_shard_ops,
        })
    }
}

/// Builds a stitched snapshot from coordinator parts (free function so
/// setup/restore can call it before the struct exists).
#[allow(clippy::too_many_arguments)]
fn build_snapshot(
    instance_id: u64,
    epoch: u64,
    version: u64,
    sequence: u64,
    routing: &ShardRouting,
    engines: &[InGrassEngine],
    boundary: &BoundaryGraph,
    hierarchy: &Arc<LrdHierarchy>,
    threads: usize,
) -> Result<SparsifierSnapshot> {
    let graph = assemble_graph(routing, engines, boundary)?;
    let stitched = StitchedPrecond::build(
        &graph,
        routing.shard_of_slice(),
        routing.shards(),
        epoch,
        threads,
    )?;
    SparsifierSnapshot::assemble(
        instance_id,
        epoch,
        version,
        sequence,
        graph,
        SnapshotPrecond::Sharded(stitched),
        Arc::clone(hierarchy),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingrass_gen::{grid_2d, WeightModel};
    use ingrass_linalg::Preconditioner;

    fn fixture(side: usize, seed: u64) -> Graph {
        grid_2d(side, side, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed)
    }

    fn engine(side: usize, shards: usize) -> ShardedEngine {
        ShardedEngine::setup(
            &fixture(side, 1),
            &SetupConfig::default(),
            &ShardedConfig::default().with_shards(shards),
        )
        .unwrap()
    }

    fn edge_set(g: &Graph) -> Vec<(usize, usize, u64)> {
        let mut out: Vec<(usize, usize, u64)> = g
            .edges()
            .iter()
            .map(|e| {
                let (u, v) = (e.u.index(), e.v.index());
                let (u, v) = if u < v { (u, v) } else { (v, u) };
                (u, v, e.weight.to_bits())
            })
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn setup_partitions_without_losing_edges() {
        let h0 = fixture(10, 1);
        let eng = ShardedEngine::setup(
            &h0,
            &SetupConfig::default(),
            &ShardedConfig::default().with_shards(4),
        )
        .unwrap();
        assert_eq!(eng.shards(), 4);
        assert_eq!(edge_set(&eng.assembled_graph().unwrap()), edge_set(&h0));
        assert!(!eng.boundary().is_empty());
        let snap = eng.snapshot();
        assert_eq!(snap.sequence(), 1);
        assert!(snap.verify_checksum());
    }

    #[test]
    fn snapshot_solves_its_own_laplacian_exactly() {
        let eng = engine(8, 3);
        let snap = eng.snapshot();
        let n = snap.num_nodes();
        let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut z = vec![0.0; n];
        snap.preconditioner().apply(&r, &mut z);
        let mut lz = vec![0.0; n];
        snap.laplacian().matvec(&z, &mut lz);
        for i in 1..n {
            assert!(
                (lz[i] - (r[i] - r[0])).abs() < 1e-7 || (lz[i] - r[i]).abs() < 1e-7,
                "residual at {i}: Lz={} r={}",
                lz[i],
                r[i]
            );
        }
        // Exact effective resistance of a self pair is zero.
        assert_eq!(
            snap.effective_resistance(NodeId::new(3), NodeId::new(3)),
            0.0
        );
    }

    #[test]
    fn batches_route_to_shards_and_boundary() {
        let mut eng = engine(8, 2);
        // Find an intra-shard and a cross-shard non-edge pair.
        let routing = eng.routing().clone();
        let n = routing.num_nodes();
        let mut intra = None;
        let mut cross = None;
        'outer: for u in 0..n {
            for v in (u + 1)..n {
                let same = routing.shard_of(u) == routing.shard_of(v);
                if same && intra.is_none() {
                    intra = Some((u, v));
                } else if !same && cross.is_none() {
                    cross = Some((u, v));
                }
                if intra.is_some() && cross.is_some() {
                    break 'outer;
                }
            }
        }
        let (iu, iv) = intra.unwrap();
        let (cu, cv) = cross.unwrap();
        let before_boundary = eng.boundary().len();
        let report = eng
            .apply_batch(
                &[
                    UpdateOp::Insert {
                        u: iu,
                        v: iv,
                        weight: 0.5,
                    },
                    UpdateOp::Insert {
                        u: cu,
                        v: cv,
                        weight: 0.25,
                    },
                ],
                &UpdateConfig::default(),
            )
            .unwrap();
        assert_eq!(report.intra_ops, 1);
        assert_eq!(report.boundary_ops, 1);
        assert_eq!(report.boundary_inserted, 1);
        let owner = routing.shard_of(iu);
        assert_eq!(report.shard_reports[owner].as_ref().unwrap().batch_size, 1);
        assert!(eng.boundary().len() >= before_boundary);
        assert_eq!(eng.version(), 1);

        // Publish is explicit: the reader still sees sequence 1 until then.
        let reader = eng.reader();
        assert_eq!(reader.current().sequence(), 1);
        let pub_report = eng.publish().unwrap();
        assert_eq!(pub_report.sequence, 2);
        let stats = pub_report.shard.unwrap();
        assert_eq!(stats.shards, 2);
        assert_eq!(stats.total_shard_ops, 1);
        assert_eq!(reader.current().sequence(), 2);
        assert!(reader.current().verify_checksum());
    }

    #[test]
    fn boundary_bridge_delete_relinks() {
        let mut eng = engine(8, 2);
        // Delete every boundary edge; the last removal must re-link to
        // keep the shard quotient connected.
        let edges: Vec<(u32, u32, f64)> = eng.boundary().to_edges();
        assert!(!edges.is_empty());
        let ops: Vec<UpdateOp> = edges
            .iter()
            .map(|&(u, v, _)| UpdateOp::Delete {
                u: u as usize,
                v: v as usize,
            })
            .collect();
        // Drift would legitimately trip on this much deleted weight; keep
        // the routing stable for the assertion below.
        let mut cfg = eng.setup_cfg.clone();
        cfg.drift = DriftPolicy::never();
        eng.setup_cfg = cfg;
        let report = eng.apply_batch(&ops, &UpdateConfig::default()).unwrap();
        assert!(report.boundary_relinked >= 1, "{report:?}");
        assert!(eng.quotient_connected());
        eng.publish().unwrap();
        assert!(eng.snapshot().verify_checksum());
    }

    #[test]
    fn forced_resetup_bumps_epoch_and_rebuilds_routing() {
        let mut eng = engine(8, 3);
        let v0 = eng.version();
        eng.resetup().unwrap();
        assert_eq!(eng.epoch(), 1);
        assert_eq!(eng.version(), v0 + 1);
        let report = eng.publish().unwrap();
        assert_eq!(report.epoch, 1);
        assert!(eng.snapshot().verify_checksum());
    }

    #[test]
    fn state_round_trips_bit_exactly() {
        let mut eng = engine(8, 3);
        eng.apply_batch(
            &[
                UpdateOp::Insert {
                    u: 0,
                    v: 63,
                    weight: 0.4,
                },
                UpdateOp::Insert {
                    u: 5,
                    v: 40,
                    weight: 1.1,
                },
                UpdateOp::Delete { u: 0, v: 1 },
            ],
            &UpdateConfig::default(),
        )
        .unwrap();
        eng.publish().unwrap();
        let restored = ShardedEngine::from_state(eng.export_state()).unwrap();
        assert_eq!(restored.snapshot().checksum(), {
            // Restored checksum differs only through instance_id, which is
            // process-unique by design; compare the structural parts.
            let a = eng.snapshot();
            let b = restored.snapshot();
            assert_eq!(a.epoch(), b.epoch());
            assert_eq!(a.version(), b.version());
            assert_eq!(a.sequence(), b.sequence());
            assert_eq!(edge_set(a.graph()), edge_set(b.graph()));
            b.checksum()
        });
        // And the two engines evolve identically from here.
        let ops = [
            UpdateOp::Insert {
                u: 2,
                v: 61,
                weight: 0.7,
            },
            UpdateOp::Reweight {
                u: 5,
                v: 40,
                weight: 0.9,
            },
        ];
        let mut a = eng;
        let mut b = restored;
        a.apply_batch(&ops, &UpdateConfig::default()).unwrap();
        b.apply_batch(&ops, &UpdateConfig::default()).unwrap();
        a.publish().unwrap();
        b.publish().unwrap();
        assert_eq!(
            edge_set(a.snapshot().graph()),
            edge_set(b.snapshot().graph())
        );
    }

    #[test]
    fn fence_reports_parallel_phase_and_skips_boundary_only_batches() {
        let mut eng = ShardedEngine::setup(
            &fixture(8, 1),
            &SetupConfig::default(),
            &ShardedConfig::default()
                .with_shards(2)
                .with_threads(Some(4)),
        )
        .unwrap();
        let routing = eng.routing().clone();
        let n = routing.num_nodes();
        let mut intra = None;
        let mut cross = None;
        'outer: for u in 0..n {
            for v in (u + 1)..n {
                let same = routing.shard_of(u) == routing.shard_of(v);
                if same && intra.is_none() {
                    intra = Some((u, v));
                } else if !same && cross.is_none() {
                    cross = Some((u, v));
                }
                if intra.is_some() && cross.is_some() {
                    break 'outer;
                }
            }
        }
        let (iu, iv) = intra.unwrap();
        let (cu, cv) = cross.unwrap();

        // A batch with shard work runs the parallel phase: the fence
        // width clamps to the shard count and the span is recorded once.
        let report = eng
            .apply_batch(
                &[UpdateOp::Insert {
                    u: iu,
                    v: iv,
                    weight: 0.5,
                }],
                &UpdateConfig::default(),
            )
            .unwrap();
        assert_eq!(report.fence_width, 2, "width = min(threads, shards)");
        assert!(report.parallel_wall_s > 0.0);
        assert_eq!(eng.shard_stats().parallel_update.count(), 1);
        let span = eng.shard_stats().parallel_update.total_seconds();
        assert!(span >= report.parallel_wall_s);

        // A boundary-only batch commits without a parallel phase: no
        // fence span is recorded and the wall reads zero.
        let report = eng
            .apply_batch(
                &[UpdateOp::Insert {
                    u: cu,
                    v: cv,
                    weight: 0.25,
                }],
                &UpdateConfig::default(),
            )
            .unwrap();
        assert_eq!(report.intra_ops, 0);
        assert_eq!(report.parallel_wall_s, 0.0);
        assert_eq!(eng.shard_stats().parallel_update.count(), 1);
        assert!(report.shard_reports.iter().all(Option::is_none));
    }

    #[test]
    fn invalid_ops_leave_every_shard_untouched() {
        let mut eng = engine(6, 2);
        let v0 = eng.version();
        let err = eng.apply_batch(
            &[
                UpdateOp::Insert {
                    u: 0,
                    v: 5,
                    weight: 1.0,
                },
                UpdateOp::Insert {
                    u: 0,
                    v: 99_999,
                    weight: 1.0,
                },
            ],
            &UpdateConfig::default(),
        );
        assert!(err.is_err());
        assert_eq!(eng.version(), v0);
        assert_eq!(eng.updates_applied(), 0);
    }
}
