//! The incremental sparsification engine (setup + update phases).

use crate::config::{ResistanceBackend, SetupConfig, UpdateConfig};
use crate::connectivity::ClusterConnectivity;
use crate::error::InGrassError;
use crate::ledger::{UpdateLedger, UpdateOp};
use crate::lrd::{LrdHierarchy, LrdLevel};
use crate::report::{EdgeOutcome, PhaseTimer, SetupReport, UpdateReport};
use crate::Result;
use ingrass_graph::{is_connected, DynGraph, Graph, NodeId};
use ingrass_resistance::{JlEmbedder, KrylovEmbedder, ResistanceEstimator};

/// The setup-phase artifacts rebuilt at every (re)setup.
struct SetupArtifacts {
    hierarchy: LrdHierarchy,
    connectivity: ClusterConnectivity,
    h: DynGraph,
    report: SetupReport,
}

/// The inGRASS engine: owns the sparsifier `H` and the setup-phase
/// artifacts (LRD hierarchy + cluster connectivity), and applies streamed
/// update operations in `O(log N)` per insertion. Deletions additionally
/// run a bidirectional connectivity probe that stops as soon as an
/// alternative path between the endpoints is found — local (a few hops)
/// for the typical non-bridge deletion, `O(N + M)` worst case only when
/// the deleted edge really is a bridge (which then triggers a re-link).
///
/// All mutations flow through [`InGrassEngine::apply_batch`] as
/// [`UpdateOp`]s (insertions, deletions, reweights); every operation is
/// recorded in the [`UpdateLedger`], whose drift tracker re-runs the setup
/// phase automatically once the configured [`crate::DriftPolicy`] is
/// exceeded. [`InGrassEngine::insert_batch`] remains as a thin
/// insert-only compatibility wrapper.
///
/// See the [crate-level documentation](crate) for the full algorithm and a
/// quickstart; paper: Algorithm 1.
#[derive(Debug)]
pub struct InGrassEngine {
    hierarchy: LrdHierarchy,
    connectivity: ClusterConnectivity,
    h: DynGraph,
    /// Per-edge *merged surplus*: the part of an edge's weight that was
    /// absorbed from other logical edges (merge/redistribute outcomes),
    /// indexed by edge id. Deleting an edge only removes its own original
    /// weight — the surplus belongs to graph edges that still exist, so the
    /// deletion path re-injects it through the filter instead of dropping
    /// it. Reset at every (re)setup epoch (ids are compacted).
    surplus: Vec<f64>,
    /// Scratch for the deletion path's connectivity probe: per-node visit
    /// stamps (two fresh marks per probe), reused so a probe allocates no
    /// `O(n)` buffer.
    probe_mark: Vec<u64>,
    probe_epoch: u64,
    setup_report: SetupReport,
    setup_cfg: SetupConfig,
    /// Journal of sparsifier edge-weight changes `(u, v, Δw)` since the
    /// last drain (or re-setup). These are the *actual* mutations of `h` —
    /// after merge/redistribute/relink/surplus transformations — so a
    /// cached Cholesky factor of `L_H` can be patched with one rank-1
    /// update per entry instead of refactorizing
    /// (`SparsifierPrecond::apply_edge_deltas`). Compacted in
    /// place when it outgrows the sparsifier; cleared by a re-setup, which
    /// invalidates factors wholesale via the epoch.
    deltas: Vec<(u32, u32, f64)>,
    ledger: UpdateLedger,
    updates_applied: usize,
    version: u64,
    instance_id: u64,
}

/// Process-wide counter backing [`InGrassEngine::instance_id`].
static ENGINE_IDS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Allocates a fresh process-unique identity from the same counter the
/// engines use, so sharded coordinators and single engines share one id
/// space (external caches key on `(instance_id, epoch)` and must never
/// collide across the two kinds).
pub(crate) fn next_instance_id() -> u64 {
    ENGINE_IDS.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

impl InGrassEngine {
    /// Runs the one-time setup phase on the initial sparsifier `h0`.
    ///
    /// Steps (paper Algorithm 1, lines 1–3): estimate the effective
    /// resistance of every sparsifier edge, build the multilevel LRD
    /// decomposition, and index cluster connectivity at every level.
    ///
    /// The configuration is retained: its [`crate::DriftPolicy`] governs
    /// when churn triggers an automatic re-setup over the same pipeline.
    ///
    /// # Errors
    /// [`InGrassError::BadSparsifier`] if `h0` is empty or disconnected;
    /// [`InGrassError::InvalidConfig`] for bad configuration values.
    pub fn setup(h0: &Graph, cfg: &SetupConfig) -> Result<Self> {
        let built = Self::build_artifacts(h0, cfg)?;
        let ledger = UpdateLedger::new(built.h.total_weight(), &built.hierarchy);
        let surplus = vec![0.0; built.h.num_edges()];
        let probe_mark = vec![0; built.h.num_nodes()];
        Ok(InGrassEngine {
            hierarchy: built.hierarchy,
            connectivity: built.connectivity,
            h: built.h,
            surplus,
            probe_mark,
            probe_epoch: 0,
            setup_report: built.report,
            setup_cfg: cfg.clone(),
            deltas: Vec::new(),
            ledger,
            updates_applied: 0,
            version: 0,
            instance_id: ENGINE_IDS.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        })
    }

    /// Validates the input graph and runs setup phase 1: per-edge
    /// effective-resistance estimates with the configured backend.
    ///
    /// Shared by [`InGrassEngine::build_artifacts`] and the sharded
    /// coordinator (`crate::shard`), which needs a *global* hierarchy for
    /// its routing table without paying for a full engine setup.
    pub(crate) fn estimate_edge_resistances(h0: &Graph, cfg: &SetupConfig) -> Result<Vec<f64>> {
        if h0.num_nodes() == 0 {
            return Err(InGrassError::BadSparsifier("no nodes".into()));
        }
        if !is_connected(h0) {
            return Err(InGrassError::BadSparsifier(
                "initial sparsifier must be connected".into(),
            ));
        }
        Ok(match &cfg.resistance {
            ResistanceBackend::Krylov(kc) => {
                let kc = kc.clone().with_seed(cfg.seed);
                let emb = KrylovEmbedder::build(h0, &kc)
                    .map_err(|e| InGrassError::BadSparsifier(e.to_string()))?;
                emb.edge_resistances(h0)
            }
            ResistanceBackend::Jl(jc) => {
                let jc = jc.clone().with_seed(cfg.seed);
                let emb = JlEmbedder::build(h0, &jc)
                    .map_err(|e| InGrassError::BadSparsifier(e.to_string()))?;
                emb.edge_resistances(h0)
            }
            ResistanceBackend::LocalOnly => h0.edges().iter().map(|e| 1.0 / e.weight).collect(),
        })
    }

    /// The three setup phases, shared by [`InGrassEngine::setup`] and every
    /// drift-driven re-setup.
    fn build_artifacts(h0: &Graph, cfg: &SetupConfig) -> Result<SetupArtifacts> {
        let mut timer = PhaseTimer::start();
        // Phase 1 (including input validation): per-edge effective
        // resistance estimates.
        let edge_resistance = Self::estimate_edge_resistances(h0, cfg)?;
        let resistance_time = timer.lap();

        // Phase 2: multilevel LRD decomposition.
        let hierarchy = LrdHierarchy::build(
            h0,
            &edge_resistance,
            cfg.initial_diameter,
            cfg.diameter_growth,
            cfg.max_levels,
        )?;
        let lrd_time = timer.lap();

        // Phase 3: multilevel sparse connectivity structure.
        let h = DynGraph::from_graph(h0);
        let connectivity = ClusterConnectivity::build(&h, &hierarchy);
        let connectivity_time = timer.lap();

        let report = SetupReport {
            nodes: h0.num_nodes(),
            edges: h0.num_edges(),
            levels: hierarchy.num_levels(),
            resistance_time,
            lrd_time,
            connectivity_time,
            total_time: timer.total(),
        };
        Ok(SetupArtifacts {
            hierarchy,
            connectivity,
            h,
            report,
        })
    }

    /// Re-runs the setup phase on the *live* sparsifier: fresh resistance
    /// estimates, a fresh LRD hierarchy, and a fresh connectivity index
    /// (with compacted edge ids). The ledger's drift tracker and staleness
    /// counters reset; lifetime operation counters survive.
    ///
    /// Called automatically by [`InGrassEngine::apply_batch`] when the
    /// [`crate::DriftPolicy`] threshold is crossed; public so callers can
    /// force a re-setup at their own cadence.
    ///
    /// # Errors
    /// Propagates setup errors (the live sparsifier is connected by
    /// invariant, so these indicate estimator failure).
    pub fn resetup(&mut self) -> Result<&SetupReport> {
        let snapshot = self.h.to_graph();
        let built = Self::build_artifacts(&snapshot, &self.setup_cfg)?;
        self.hierarchy = built.hierarchy;
        self.connectivity = built.connectivity;
        self.h = built.h;
        self.surplus = vec![0.0; self.h.num_edges()];
        // Stale weight deltas refer to the pre-resetup sparsifier; the
        // epoch bump already tells factor caches to rebuild from scratch.
        self.deltas.clear();
        self.setup_report = built.report;
        self.ledger
            .begin_epoch(self.h.total_weight(), &self.hierarchy);
        self.version += 1;
        Ok(&self.setup_report)
    }

    /// Applies one batch of update operations (insertions, deletions,
    /// reweights) — the uniform mutation path.
    ///
    /// The batch is validated up front (no partial application on invalid
    /// input). Runs of consecutive insertions are ranked by estimated
    /// spectral distortion `w·R̂` (descending, unless disabled) exactly like
    /// the paper's insert-only update phase; deletions and reweights act as
    /// ordering barriers so that rip-up sequences (delete then re-insert)
    /// keep their meaning. After the batch, the drift tracker is consulted
    /// and — if the configured [`crate::DriftPolicy`] was exceeded — a
    /// re-setup runs before this call returns (reported in
    /// [`UpdateReport::resetup`]).
    ///
    /// Operation semantics:
    ///
    /// * [`UpdateOp::Insert`] — include / merge / redistribute at the
    ///   filtering level (paper Fig. 3).
    /// * [`UpdateOp::Delete`] — remove the edge from the sparsifier; a
    ///   bridge deletion re-links the endpoints with weight
    ///   `min(w, 1/R̂(u,v))` (the hierarchy's alternative-path conductance
    ///   estimate) so the sparsifier stays connected. Deleting an edge the
    ///   sparsifier never carried is vacuous (its weight was filtered or
    ///   merged away) but still counts toward staleness.
    /// * [`UpdateOp::Reweight`] — overwrite the weight in place when the
    ///   sparsifier carries the edge; vacuous otherwise. Callers that need
    ///   exact semantics for absorbed edges should rip-up (delete +
    ///   re-insert).
    ///
    /// # Errors
    /// [`InGrassError::InvalidConfig`] if `target_condition < 2`;
    /// [`InGrassError::Graph`] if an operation references an unknown node,
    /// a self-loop, or carries a non-positive weight.
    pub fn apply_batch(&mut self, ops: &[UpdateOp], cfg: &UpdateConfig) -> Result<UpdateReport> {
        let timer = PhaseTimer::start();
        if cfg.target_condition < 2.0 {
            return Err(InGrassError::InvalidConfig(format!(
                "target condition must be ≥ 2, got {}",
                cfg.target_condition
            )));
        }
        let n = self.h.num_nodes();
        for op in ops {
            let (u, v) = op.endpoints();
            if u >= n || v >= n {
                return Err(InGrassError::Graph(format!(
                    "edge ({u},{v}) out of bounds for {n} nodes"
                )));
            }
            if u == v {
                return Err(InGrassError::Graph(format!("self-loop at node {u}")));
            }
            if let Some(w) = op.weight() {
                if w <= 0.0 || !w.is_finite() {
                    return Err(InGrassError::Graph(format!(
                        "edge ({u},{v}) has invalid weight {w}"
                    )));
                }
            }
        }

        let level = self.filtering_level_for(cfg);

        // Spectral distortion estimation (update phase 1): O(levels) per
        // insert via the LRD embedding. The scores are independent reads of
        // the hierarchy, so huge batches fan out across threads (scores land
        // by index — identical at any width); typical O(10³)-op batches
        // stay serial per the shared ingrass-par threshold.
        let hierarchy = &self.hierarchy;
        let scores: Vec<f64> = ingrass_par::par_map_auto(ops, |op| match *op {
            UpdateOp::Insert { u, v, weight } => {
                let r = hierarchy.resistance_bound(NodeId::new(u), NodeId::new(v));
                weight * r.min(f64::MAX / 2.0)
            }
            _ => 0.0,
        });

        // Ordering: each maximal run of consecutive inserts is sorted by
        // distortion (the paper's ranking); deletes/reweights pin their
        // position so mixed sequences keep their operational meaning.
        let mut order: Vec<usize> = Vec::with_capacity(ops.len());
        let mut run: Vec<usize> = Vec::new();
        let flush = |order: &mut Vec<usize>, run: &mut Vec<usize>| {
            if cfg.sort_by_distortion {
                run.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
            }
            order.append(run);
        };
        for (i, op) in ops.iter().enumerate() {
            match op {
                UpdateOp::Insert { .. } => run.push(i),
                _ => {
                    flush(&mut order, &mut run);
                    order.push(i);
                }
            }
        }
        flush(&mut order, &mut run);

        let mut report = UpdateReport {
            batch_size: ops.len(),
            included: 0,
            merged: 0,
            redistributed: 0,
            deleted: 0,
            relinked: 0,
            reweighted: 0,
            vacuous: 0,
            filtering_level: level,
            max_distortion: 0.0,
            resetup: None,
            drift_deleted_weight_fraction: 0.0,
            drift_distortion_fraction: 0.0,
            elapsed: std::time::Duration::ZERO,
        };
        for &idx in &order {
            let outcome = match ops[idx] {
                UpdateOp::Insert { u, v, weight } => {
                    report.max_distortion = report.max_distortion.max(scores[idx]);
                    self.ledger.note_insert();
                    self.apply_edge(NodeId::new(u), NodeId::new(v), weight, level)?
                }
                UpdateOp::Delete { u, v } => {
                    let (outcome, distortion) =
                        self.apply_delete(NodeId::new(u), NodeId::new(v), level)?;
                    report.max_distortion = report.max_distortion.max(distortion);
                    outcome
                }
                UpdateOp::Reweight { u, v, weight } => {
                    let (outcome, distortion) =
                        self.apply_reweight(NodeId::new(u), NodeId::new(v), weight)?;
                    report.max_distortion = report.max_distortion.max(distortion);
                    outcome
                }
            };
            match outcome {
                EdgeOutcome::Included => report.included += 1,
                EdgeOutcome::Merged => report.merged += 1,
                EdgeOutcome::Redistributed => report.redistributed += 1,
                EdgeOutcome::Deleted => report.deleted += 1,
                EdgeOutcome::Relinked => report.relinked += 1,
                EdgeOutcome::Reweighted => report.reweighted += 1,
                EdgeOutcome::Vacuous => report.vacuous += 1,
            }
        }
        self.updates_applied += ops.len();
        if !ops.is_empty() {
            self.version += 1;
        }

        // Drift policy: the setup/update split as a policy, not a lifecycle.
        if let Some(reason) = self.ledger.should_resetup(&self.setup_cfg.drift) {
            self.resetup()?;
            report.resetup = Some(reason);
        }
        report.drift_deleted_weight_fraction = self.ledger.drift().deleted_weight_fraction();
        report.drift_distortion_fraction = self.ledger.drift().distortion_fraction();
        report.elapsed = timer.total();
        Ok(report)
    }

    /// Applies one batch of newly inserted edges `(u, v, weight)` (paper
    /// Algorithm 1, lines 4–5).
    ///
    /// Thin compatibility wrapper over [`InGrassEngine::apply_batch`] with
    /// every operation an [`UpdateOp::Insert`]; insert-only batches behave
    /// exactly as the bespoke pre-ledger path did.
    ///
    /// # Errors
    /// As for [`InGrassEngine::apply_batch`].
    pub fn insert_batch(
        &mut self,
        edges: &[(usize, usize, f64)],
        cfg: &UpdateConfig,
    ) -> Result<UpdateReport> {
        let ops: Vec<UpdateOp> = edges
            .iter()
            .map(|&(u, v, weight)| UpdateOp::Insert { u, v, weight })
            .collect();
        self.apply_batch(&ops, cfg)
    }

    /// Applies one inserted edge at the given filtering level and reports
    /// its fate.
    fn apply_edge(&mut self, u: NodeId, v: NodeId, w: f64, level: usize) -> Result<EdgeOutcome> {
        let lvl = self.hierarchy.level(level);
        let (cu, cv) = (lvl.cluster_of[u.index()], lvl.cluster_of[v.index()]);

        if cu == cv {
            // Same cluster: discard and spread the weight proportionally
            // over the cluster's internal sparsifier edges.
            let intra = self.connectivity.intra_edges(level, cu);
            if !intra.is_empty() {
                let total: f64 = intra
                    .iter()
                    .filter_map(|&e| self.h.edge(e))
                    .map(|e| e.weight)
                    .sum();
                if total > 0.0 {
                    let ids: Vec<_> = intra.to_vec();
                    for e in ids {
                        if let Some(edge) = self.h.edge(e) {
                            let share = w * edge.weight / total;
                            self.h
                                .add_weight(e, share)
                                .map_err(|err| InGrassError::Graph(err.to_string()))?;
                            self.add_surplus(e, share);
                            self.note_delta(edge.u, edge.v, share);
                        }
                    }
                    return Ok(EdgeOutcome::Redistributed);
                }
            }
            // Defensive fall-through (a cluster with no internal edges
            // cannot arise from edge contraction, but deletion churn can
            // empty one): include.
        } else if let Some(rep) = self
            .connectivity
            .connecting_live_edge(level, cu, cv, &self.h)
        {
            // Clusters already connected: absorb the weight into the
            // existing representative edge.
            let rep_edge = self.h.edge(rep).expect("connecting edge is live");
            self.h
                .add_weight(rep, w)
                .map_err(|err| InGrassError::Graph(err.to_string()))?;
            self.add_surplus(rep, w);
            self.note_delta(rep_edge.u, rep_edge.v, w);
            return Ok(EdgeOutcome::Merged);
        }

        // Spectrally unique: include and index at every level.
        let (id, created) = self
            .h
            .add_edge(u, v, w)
            .map_err(|err| InGrassError::Graph(err.to_string()))?;
        self.note_delta(u, v, w);
        if created {
            self.connectivity
                .register_edge(&self.hierarchy, &self.h, id, u, v);
        } else {
            // A parallel logical edge landed on a pair the sparsifier
            // already carries: the addition is absorbed weight.
            self.add_surplus(id, w);
        }
        Ok(EdgeOutcome::Included)
    }

    /// Journals one sparsifier weight change (see the `deltas` field).
    fn note_delta(&mut self, u: NodeId, v: NodeId, dw: f64) {
        if dw == 0.0 {
            return;
        }
        self.deltas.push((u.index() as u32, v.index() as u32, dw));
        // Keep the journal proportional to the sparsifier even if nobody
        // drains it: coalescing bounds it by the distinct pairs touched.
        if self.deltas.len() > (4 * self.h.num_edges()).max(1024) {
            self.deltas = Self::coalesce_deltas(std::mem::take(&mut self.deltas));
        }
    }

    /// Sums journal entries per unordered endpoint pair (deterministic:
    /// sorted by pair) and drops exact cancellations.
    fn coalesce_deltas(mut raw: Vec<(u32, u32, f64)>) -> Vec<(u32, u32, f64)> {
        for d in raw.iter_mut() {
            if d.0 > d.1 {
                std::mem::swap(&mut d.0, &mut d.1);
            }
        }
        raw.sort_by_key(|&(u, v, _)| (u, v));
        let mut out: Vec<(u32, u32, f64)> = Vec::with_capacity(raw.len());
        for (u, v, dw) in raw {
            match out.last_mut() {
                Some(last) if last.0 == u && last.1 == v => last.2 += dw,
                _ => out.push((u, v, dw)),
            }
        }
        out.retain(|&(_, _, dw)| dw != 0.0);
        out
    }

    /// Drains the journal of sparsifier edge-weight changes since the last
    /// drain (or the last re-setup, which clears it): one `(u, v, Δw)` per
    /// touched unordered endpoint pair, net of cancellations.
    ///
    /// This is how the serving layer keeps a live Cholesky factor patched:
    /// each entry is a rank-1 update/downdate of `L_H`
    /// (`SparsifierPrecond::apply_edge_deltas`). Deltas journaled
    /// in an epoch the consumer never saw are useless — always compare
    /// [`InGrassEngine::epoch`] against the factor's before applying.
    pub fn take_edge_deltas(&mut self) -> Vec<(u32, u32, f64)> {
        Self::coalesce_deltas(std::mem::take(&mut self.deltas))
    }

    /// Records absorbed weight on an edge (see the `surplus` field).
    fn add_surplus(&mut self, id: ingrass_graph::EdgeId, w: f64) {
        if self.surplus.len() <= id.index() {
            self.surplus.resize(id.index() + 1, 0.0);
        }
        self.surplus[id.index()] += w;
    }

    /// The absorbed (non-original) share of an edge's weight.
    fn surplus_of(&self, id: ingrass_graph::EdgeId) -> f64 {
        self.surplus.get(id.index()).copied().unwrap_or(0.0)
    }

    /// Applies one deletion at the given filtering level; returns the
    /// outcome and the estimated distortion `w·R̂` the deletion contributes.
    ///
    /// Only the edge's *original* weight is removed: merged surplus belongs
    /// to logical edges that still exist, so it is re-injected through the
    /// filter (where it lands on another representative, spreads inside the
    /// cluster, or — rarely — becomes a fresh edge).
    fn apply_delete(&mut self, u: NodeId, v: NodeId, level: usize) -> Result<(EdgeOutcome, f64)> {
        let Some(id) = self.h.edge_id(u, v) else {
            // The sparsifier never carried this edge (filtered or merged
            // away at insert time): nothing physical to undo, but the
            // cluster's certified diameter still weakens.
            self.ledger.note_vacuous(&self.hierarchy, u, v);
            return Ok((EdgeOutcome::Vacuous, 0.0));
        };
        let w = self.h.edge(id).expect("indexed edge is live").weight;
        let surplus = self.surplus_of(id).min(w);
        let w_own = w - surplus;
        let rhat = self.hierarchy.resistance_bound(u, v);
        let distortion = if rhat.is_finite() { w_own * rhat } else { 0.0 };
        self.h.remove_edge(u, v).expect("edge id was live");
        self.note_delta(u, v, -w);
        if self.surplus.len() > id.index() {
            self.surplus[id.index()] = 0.0;
        }
        self.connectivity
            .unregister_edge(&self.hierarchy, &self.h, id, u, v);
        if self.still_connected(u, v) {
            if surplus > 0.0 {
                self.apply_edge(u, v, surplus, level)?;
            }
            self.ledger
                .note_delete(&self.hierarchy, u, v, w_own, rhat, false);
            Ok((EdgeOutcome::Deleted, distortion))
        } else {
            // Bridge deletion: the sparsifier must stay connected (both the
            // condition number and a future re-setup are undefined
            // otherwise). Re-link the endpoints through the spanning
            // structure with the hierarchy's alternative-path conductance
            // estimate `1/R̂` — the weight the surviving paths would carry —
            // capped by the deleted weight; absorbed surplus rides along on
            // the re-link edge.
            let relink_own = if rhat.is_finite() && rhat > 0.0 {
                (1.0 / rhat).min(w_own)
            } else {
                w_own
            };
            let relink_w = (relink_own + surplus).max(f64::MIN_POSITIVE);
            let (id2, created) = self
                .h
                .add_edge(u, v, relink_w)
                .expect("relink endpoints are valid");
            self.note_delta(u, v, relink_w);
            if created {
                self.connectivity
                    .register_edge(&self.hierarchy, &self.h, id2, u, v);
                if surplus > 0.0 {
                    self.add_surplus(id2, surplus);
                }
            }
            self.ledger
                .note_delete(&self.hierarchy, u, v, w_own - relink_own, rhat, true);
            Ok((EdgeOutcome::Relinked, distortion))
        }
    }

    /// Whether `u` and `v` are still connected in the live sparsifier —
    /// the deletion path's bridge check.
    ///
    /// Bidirectional BFS over epoch-stamped scratch marks: the two
    /// frontiers stop the moment they meet, so the typical non-bridge
    /// deletion (whose alternative path is a handful of hops through the
    /// neighbourhood) costs a few adjacency scans rather than the full
    /// `O(N + M)` sweep a one-sided search would need; only a true bridge
    /// pays for sweeping its (smaller) side of the cut.
    fn still_connected(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return true;
        }
        // Two fresh marks per probe; stale marks from earlier probes can
        // never collide because the epoch only grows.
        self.probe_epoch += 2;
        let (mark_u, mark_v) = (self.probe_epoch, self.probe_epoch | 1);
        self.probe_mark[u.index()] = mark_u;
        self.probe_mark[v.index()] = mark_v;
        let mut frontier_u = vec![u];
        let mut frontier_v = vec![v];
        loop {
            // Expand the smaller frontier (classic bidirectional search).
            let from_u = frontier_u.len() <= frontier_v.len();
            let (frontier, own, other) = if from_u {
                (&mut frontier_u, mark_u, mark_v)
            } else {
                (&mut frontier_v, mark_v, mark_u)
            };
            if frontier.is_empty() {
                return false;
            }
            let mut next = Vec::with_capacity(frontier.len());
            for &x in frontier.iter() {
                for (y, _, _) in self.h.neighbors(x) {
                    let seen = self.probe_mark[y.index()];
                    if seen == other {
                        return true;
                    }
                    if seen != own {
                        self.probe_mark[y.index()] = own;
                        next.push(y);
                    }
                }
            }
            *frontier = next;
        }
    }

    /// Applies one reweight; returns the outcome and the estimated
    /// distortion `|Δw|·R̂` the change contributes.
    ///
    /// The new weight replaces the edge's *original* share; merged surplus
    /// stays on the edge (it belongs to other logical edges).
    fn apply_reweight(&mut self, u: NodeId, v: NodeId, w: f64) -> Result<(EdgeOutcome, f64)> {
        let Some(id) = self.h.edge_id(u, v) else {
            // The weight lives on a representative edge (or was filtered);
            // exact semantics need a rip-up (delete + re-insert).
            self.ledger.note_vacuous(&self.hierarchy, u, v);
            return Ok((EdgeOutcome::Vacuous, 0.0));
        };
        let old = self.h.edge(id).expect("indexed edge is live").weight;
        let surplus = self.surplus_of(id).min(old);
        let old_own = old - surplus;
        self.h
            .set_weight(id, w + surplus)
            .map_err(|err| InGrassError::Graph(err.to_string()))?;
        self.note_delta(u, v, (w + surplus) - old);
        let rhat = self.hierarchy.resistance_bound(u, v);
        let removed = (old_own - w).max(0.0);
        self.ledger
            .note_reweight(&self.hierarchy, u, v, removed, rhat);
        let distortion = if rhat.is_finite() {
            (old_own - w).abs() * rhat
        } else {
            0.0
        };
        Ok((EdgeOutcome::Reweighted, distortion))
    }

    /// Estimated spectral distortion `w · R̂(u, v)` of a candidate edge.
    pub fn estimate_distortion(&self, u: NodeId, v: NodeId, w: f64) -> f64 {
        w * self.hierarchy.resistance_bound(u, v)
    }

    /// The filtering level that a target condition number selects.
    ///
    /// The [`LrdHierarchy`] owns the definition (paper Section III-C-2);
    /// this method and every engine-internal path delegate to it.
    pub fn filtering_level(&self, target_condition: f64) -> usize {
        self.hierarchy.filtering_level(target_condition)
    }

    /// The filtering level an update config selects: the explicit override
    /// (clamped to the hierarchy) when present, else the level derived from
    /// the target condition number. The single internal source of truth.
    fn filtering_level_for(&self, cfg: &UpdateConfig) -> usize {
        cfg.filtering_level_override
            .map(|l| l.min(self.hierarchy.num_levels() - 1))
            .unwrap_or_else(|| self.filtering_level(cfg.target_condition))
    }

    /// The live sparsifier.
    pub fn sparsifier(&self) -> &DynGraph {
        &self.h
    }

    /// Immutable snapshot of the sparsifier (for matrix export and
    /// measurement).
    pub fn sparsifier_graph(&self) -> Graph {
        self.h.to_graph()
    }

    /// The LRD hierarchy built during setup.
    pub fn hierarchy(&self) -> &LrdHierarchy {
        &self.hierarchy
    }

    /// The multilevel cluster-connectivity index.
    pub fn connectivity(&self) -> &ClusterConnectivity {
        &self.connectivity
    }

    /// Setup-phase statistics.
    pub fn setup_report(&self) -> &SetupReport {
        &self.setup_report
    }

    /// Total number of stream operations processed so far.
    pub fn updates_applied(&self) -> usize {
        self.updates_applied
    }

    /// The operation ledger: lifetime insert/delete/reweight counters plus
    /// the current epoch's drift tracker and staleness counters.
    pub fn ledger(&self) -> &UpdateLedger {
        &self.ledger
    }

    /// Automatic re-setups performed so far (convenience for
    /// `ledger().resetups()`).
    pub fn resetups(&self) -> usize {
        self.ledger.resetups()
    }

    /// The engine's ledger epoch: 0 after [`InGrassEngine::setup`],
    /// incremented by every (drift-triggered or manual) re-setup.
    ///
    /// Within one epoch the LRD hierarchy and connectivity index are fixed
    /// and the sparsifier only drifts incrementally — this is the cache key
    /// the solve subsystem (`ingrass-solve`) uses to decide whether a
    /// cached sparsifier factorization is still a valid preconditioner.
    pub fn epoch(&self) -> u64 {
        self.ledger.resetups() as u64
    }

    /// A process-unique identity for this engine instance (stable across
    /// re-setups, distinct for every [`InGrassEngine::setup`] call).
    ///
    /// [`InGrassEngine::epoch`] alone cannot distinguish two *different*
    /// engines that both happen to sit at, say, epoch 0 — external caches
    /// (notably `ingrass-solve`'s factorization cache) key on
    /// `(instance_id, epoch)` so a freshly set-up engine never gets served
    /// another engine's preconditioner. The value carries no meaning
    /// beyond equality and never feeds any computation, so determinism of
    /// results is unaffected.
    pub fn instance_id(&self) -> u64 {
        self.instance_id
    }

    /// Monotone state version: incremented by every non-empty
    /// [`InGrassEngine::apply_batch`] and by every re-setup. Two equal
    /// versions imply an identical sparsifier; finer-grained than
    /// [`InGrassEngine::epoch`] for callers that want exact staleness
    /// tracking rather than the epoch-level cache policy.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Builds a fresh preconditioner from the live sparsifier: a grounded
    /// sparse Cholesky factorization of `L_H`, tagged with the current
    /// [`InGrassEngine::epoch`].
    ///
    /// The factor is exact for the sparsifier, so preconditioned CG on the
    /// *original* Laplacian `L_G` converges in `O(√κ(L_H⁻¹L_G))`
    /// iterations — the condition number the update phase keeps bounded.
    /// Callers should cache the result and rebuild when the epoch moves;
    /// the `SolveService` in `ingrass-solve` automates exactly that.
    ///
    /// # Errors
    /// [`InGrassError::BadSparsifier`] if the grounded Laplacian fails to
    /// factor (disconnected or numerically degenerate sparsifier — cannot
    /// happen while the engine's connectivity invariant holds).
    pub fn preconditioner(&self) -> Result<crate::SparsifierPrecond> {
        crate::SparsifierPrecond::build(&self.h, self.epoch(), Some(&self.hierarchy))
    }

    /// Exports the engine's complete observable state for persistence.
    ///
    /// Everything an update decision can depend on travels: the hierarchy,
    /// the incrementally maintained connectivity index (a fresh rebuild
    /// can disagree with it — see [`crate::state`]), the edge-slot array
    /// with tombstones, surplus, the undrained delta journal, and the
    /// ledger with its drift sums. The probe scratch and the
    /// process-unique [`InGrassEngine::instance_id`] are excluded: the
    /// former is unobservable between probes, the latter is regenerated at
    /// restore so caches never confuse a restored engine with its source.
    pub fn export_state(&self) -> crate::state::EngineState {
        crate::state::EngineState {
            num_nodes: self.h.num_nodes(),
            levels: self
                .hierarchy
                .levels()
                .iter()
                .map(|lvl| crate::state::LrdLevelState {
                    cluster_of: lvl.cluster_of.clone(),
                    diameter: lvl.diameter.clone(),
                    size: lvl.size.clone(),
                    num_clusters: lvl.num_clusters,
                    threshold: lvl.threshold,
                })
                .collect(),
            connectivity: self.connectivity.export_state(),
            edge_slots: self.h.edge_slots(),
            surplus: self.surplus.clone(),
            setup_report: self.setup_report.clone(),
            setup_cfg: self.setup_cfg.clone(),
            deltas: self.deltas.clone(),
            ledger: self.ledger.export_state(),
            updates_applied: self.updates_applied,
            version: self.version,
        }
    }

    /// Restores an engine from persisted state.
    ///
    /// The restored engine is bit-for-bit equivalent to the exporter for
    /// every observable computation: the same sparsifier edges (ids
    /// included), the same hierarchy and connectivity index, the same
    /// drift sums — so replaying a WAL tail on it reproduces the original
    /// run exactly. Only [`InGrassEngine::instance_id`] differs (fresh by
    /// design) and the probe scratch restarts at zero.
    ///
    /// # Errors
    /// [`InGrassError::BadSparsifier`] / [`InGrassError::InvalidConfig`]
    /// if the state is internally inconsistent (edge slots out of bounds,
    /// hierarchy node count mismatch, surplus length disagreeing with the
    /// edge-slot array).
    pub fn from_state(state: crate::state::EngineState) -> Result<Self> {
        let h = DynGraph::from_edge_slots(state.num_nodes, &state.edge_slots)?;
        // The surplus array grows lazily (`add_surplus` resizes on first
        // touch), so it may cover fewer slots than the sparsifier — but
        // never more.
        if state.surplus.len() > state.edge_slots.len() {
            return Err(InGrassError::InvalidConfig(format!(
                "surplus covers {} edge slots, sparsifier has only {}",
                state.surplus.len(),
                state.edge_slots.len()
            )));
        }
        let hierarchy = LrdHierarchy::from_levels(
            state
                .levels
                .into_iter()
                .map(|lvl| LrdLevel {
                    cluster_of: lvl.cluster_of,
                    diameter: lvl.diameter,
                    size: lvl.size,
                    num_clusters: lvl.num_clusters,
                    threshold: lvl.threshold,
                })
                .collect(),
        )?;
        if hierarchy.num_nodes() != state.num_nodes {
            return Err(InGrassError::InvalidConfig(format!(
                "hierarchy labels {} nodes, sparsifier has {}",
                hierarchy.num_nodes(),
                state.num_nodes
            )));
        }
        let connectivity = ClusterConnectivity::from_state(&state.connectivity);
        let probe_mark = vec![0; state.num_nodes];
        Ok(InGrassEngine {
            hierarchy,
            connectivity,
            h,
            surplus: state.surplus,
            probe_mark,
            probe_epoch: 0,
            setup_report: state.setup_report,
            setup_cfg: state.setup_cfg,
            deltas: state.deltas,
            ledger: UpdateLedger::from_state(&state.ledger),
            updates_applied: state.updates_applied,
            version: state.version,
            instance_id: ENGINE_IDS.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SetupConfig, UpdateConfig};
    use ingrass_baselines::GrassSparsifier;
    use ingrass_gen::{grid_2d, InsertionStream, StreamConfig, WeightModel};
    use proptest::prelude::*;

    fn sparsifier_fixture(side: usize, seed: u64) -> (Graph, Graph) {
        let g = grid_2d(side, side, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed);
        let h0 = GrassSparsifier::default()
            .by_offtree_density(&g, 0.10)
            .unwrap()
            .graph;
        (g, h0)
    }

    #[test]
    fn empty_start_engine_never_drifts_into_resetup() {
        // Regression companion to the zero-baseline DriftTracker guard: an
        // engine set up from a single-node (zero-weight) sparsifier must
        // keep `should_resetup` decidable — batches apply cleanly and no
        // NaN fraction can fire (or permanently suppress) a re-setup.
        let h0 = Graph::from_edges(1, &[]).unwrap();
        let cfg = SetupConfig::default().with_resistance(crate::ResistanceBackend::LocalOnly);
        let mut engine = InGrassEngine::setup(&h0, &cfg).unwrap();
        let drift = engine.ledger().drift().deleted_weight_fraction();
        assert_eq!(drift, 0.0);
        assert!(drift.is_finite());
        let report = engine.apply_batch(&[], &UpdateConfig::default()).unwrap();
        assert!(report.resetup.is_none());
        assert_eq!(engine.epoch(), 0);
    }

    #[test]
    fn setup_produces_log_levels() {
        let (_g, h0) = sparsifier_fixture(16, 1);
        let engine = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let report = engine.setup_report();
        assert_eq!(report.nodes, 256);
        assert!(
            report.levels >= 3 && report.levels <= 24,
            "{}",
            report.levels
        );
        assert_eq!(engine.sparsifier().num_edges(), h0.num_edges());
    }

    #[test]
    fn setup_rejects_disconnected_sparsifier() {
        let h0 = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        assert!(matches!(
            InGrassEngine::setup(&h0, &SetupConfig::default()),
            Err(InGrassError::BadSparsifier(_))
        ));
    }

    #[test]
    fn all_three_outcomes_occur() {
        let (_g, h0) = sparsifier_fixture(16, 2);
        let mut engine = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let cfg = UpdateConfig {
            target_condition: 60.0,
            ..Default::default()
        };
        let level = engine.filtering_level(cfg.target_condition);
        assert!(level > 0, "target must select a non-trivial level");
        let lvl = engine.hierarchy().level(level).clone();

        // Craft one edge per outcome by inspecting the hierarchy.
        let n = h0.num_nodes();
        // (a) same cluster.
        let mut intra_pair = None;
        'outer: for u in 0..n {
            for v in (u + 1)..n {
                if lvl.cluster_of[u] == lvl.cluster_of[v]
                    && h0.edge_weight(u.into(), v.into()).is_none()
                {
                    intra_pair = Some((u, v));
                    break 'outer;
                }
            }
        }
        // (b) clusters already connected by an H edge, endpoints not
        // adjacent in H.
        let mut merge_pair = None;
        'outer2: for e in h0.edges() {
            let (cu, cv) = (lvl.cluster_of[e.u.index()], lvl.cluster_of[e.v.index()]);
            if cu == cv {
                continue;
            }
            for u in 0..n {
                if lvl.cluster_of[u] != cu || u == e.u.index() {
                    continue;
                }
                for v in 0..n {
                    if lvl.cluster_of[v] != cv || v == e.v.index() {
                        continue;
                    }
                    if h0.edge_weight(u.into(), v.into()).is_none() && u != v {
                        merge_pair = Some((u, v));
                        break 'outer2;
                    }
                }
            }
        }
        let (iu, iv) = intra_pair.expect("grid clusters have non-adjacent internal pairs");
        let (mu, mv) = merge_pair.expect("connected cluster pairs exist");

        let before_edges = engine.sparsifier().num_edges();
        let r1 = engine.insert_batch(&[(iu, iv, 1.0)], &cfg).unwrap();
        assert_eq!(r1.redistributed, 1, "intra-cluster edge must redistribute");
        assert_eq!(engine.sparsifier().num_edges(), before_edges);

        let r2 = engine.insert_batch(&[(mu, mv, 1.0)], &cfg).unwrap();
        assert_eq!(r2.merged, 1, "connected cluster pair must merge");
        assert_eq!(engine.sparsifier().num_edges(), before_edges);

        // (c) find a cluster pair with no connecting edge.
        let mut include_pair = None;
        {
            let conn = engine.connectivity();
            'outer3: for u in 0..n {
                for v in (u + 1)..n {
                    let (cu, cv) = (lvl.cluster_of[u], lvl.cluster_of[v]);
                    if cu != cv && conn.connecting_edge(level, cu, cv).is_none() {
                        include_pair = Some((u, v));
                        break 'outer3;
                    }
                }
            }
        }
        if let Some((nu, nv)) = include_pair {
            let r3 = engine.insert_batch(&[(nu, nv, 1.0)], &cfg).unwrap();
            assert_eq!(r3.included, 1, "unique cluster pair must include");
            assert_eq!(engine.sparsifier().num_edges(), before_edges + 1);
        }
    }

    #[test]
    fn weight_is_conserved_across_outcomes() {
        let (g, h0) = sparsifier_fixture(14, 3);
        let mut engine = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let stream = InsertionStream::generate(
            &g,
            &StreamConfig {
                batches: 1,
                edges_per_batch: 60,
                ..Default::default()
            },
        );
        let batch = &stream.batches()[0];
        let new_weight: f64 = batch.iter().map(|&(_, _, w)| w).sum();
        let before = engine.sparsifier().total_weight();
        let report = engine
            .insert_batch(batch, &UpdateConfig::default())
            .unwrap();
        let after = engine.sparsifier().total_weight();
        assert_eq!(report.total_processed(), batch.len());
        assert!(
            (after - before - new_weight).abs() < 1e-8 * (1.0 + new_weight),
            "weight leak: Δ={} vs inserted {}",
            after - before,
            new_weight
        );
    }

    #[test]
    fn sparsifier_stays_connected_under_updates() {
        let (g, h0) = sparsifier_fixture(12, 4);
        let mut engine = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let stream = InsertionStream::paper_default(&g, 8);
        for batch in stream.batches() {
            engine
                .insert_batch(batch, &UpdateConfig::default())
                .unwrap();
        }
        assert!(is_connected(&engine.sparsifier_graph()));
        assert_eq!(engine.updates_applied(), stream.total_edges());
    }

    #[test]
    fn tighter_target_condition_admits_more_edges() {
        // A small C forces a fine filtering level → more unique cluster
        // pairs → more inclusions; a huge C collapses everything to the top
        // cluster → everything redistributes.
        let (g, h0) = sparsifier_fixture(14, 5);
        let stream = InsertionStream::generate(
            &g,
            &StreamConfig {
                batches: 1,
                edges_per_batch: 80,
                ..Default::default()
            },
        );
        let batch = &stream.batches()[0];

        let mut tight = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let r_tight = tight
            .insert_batch(
                batch,
                &UpdateConfig {
                    target_condition: 4.0,
                    ..Default::default()
                },
            )
            .unwrap();

        let mut loose = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let r_loose = loose
            .insert_batch(
                batch,
                &UpdateConfig {
                    target_condition: 1e9,
                    ..Default::default()
                },
            )
            .unwrap();

        assert!(
            r_tight.included > r_loose.included,
            "tight {} vs loose {}",
            r_tight.included,
            r_loose.included
        );
        assert_eq!(r_loose.included, 0, "top level must absorb everything");
    }

    #[test]
    fn invalid_batches_are_rejected_atomically() {
        let (_g, h0) = sparsifier_fixture(8, 6);
        let mut engine = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let before = engine.sparsifier().total_weight();
        let cfg = UpdateConfig::default();
        assert!(engine.insert_batch(&[(0, 0, 1.0)], &cfg).is_err());
        assert!(engine.insert_batch(&[(0, 9999, 1.0)], &cfg).is_err());
        assert!(engine.insert_batch(&[(0, 1, -2.0)], &cfg).is_err());
        assert!(engine
            .insert_batch(
                &[(0, 1, 1.0)],
                &UpdateConfig {
                    target_condition: 1.0,
                    ..Default::default()
                }
            )
            .is_err());
        assert_eq!(engine.sparsifier().total_weight(), before);
        assert_eq!(engine.updates_applied(), 0);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (_g, h0) = sparsifier_fixture(8, 7);
        let mut engine = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let r = engine.insert_batch(&[], &UpdateConfig::default()).unwrap();
        assert_eq!(r.batch_size, 0);
        assert_eq!(r.total_processed(), 0);
    }

    #[test]
    fn engine_is_deterministic() {
        let (g, h0) = sparsifier_fixture(12, 8);
        let stream = InsertionStream::paper_default(&g, 3);
        let run = || {
            let mut e = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
            for b in stream.batches() {
                e.insert_batch(b, &UpdateConfig::default()).unwrap();
            }
            let snap = e.sparsifier_graph();
            (snap.num_edges(), snap.total_weight())
        };
        let (e1, w1) = run();
        let (e2, w2) = run();
        assert_eq!(e1, e2);
        assert!((w1 - w2).abs() < 1e-12);
    }

    #[test]
    fn merged_weight_lands_on_representative_edge() {
        let (_g, h0) = sparsifier_fixture(16, 9);
        let mut engine = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let cfg = UpdateConfig {
            target_condition: 60.0,
            ..Default::default()
        };
        let level = engine.filtering_level(cfg.target_condition);
        let lvl = engine.hierarchy().level(level).clone();
        // Find a cluster pair connected by exactly one H edge and a fresh
        // node pair spanning those clusters.
        let mut found = None;
        for (id, e) in h0.edges().iter().enumerate() {
            let (cu, cv) = (lvl.cluster_of[e.u.index()], lvl.cluster_of[e.v.index()]);
            if cu == cv {
                continue;
            }
            let crossings = h0
                .edges()
                .iter()
                .filter(|e2| {
                    let (a, b) = (lvl.cluster_of[e2.u.index()], lvl.cluster_of[e2.v.index()]);
                    (a.min(b), a.max(b)) == (cu.min(cv), cu.max(cv))
                })
                .count();
            if crossings == 1 {
                found = Some((id, *e, cu, cv));
                break;
            }
        }
        let Some((_, rep_edge, cu, cv)) = found else {
            return; // no singleton pair in this fixture — vacuous
        };
        // A new pair in (cu, cv) different from the representative.
        let n = h0.num_nodes();
        let mut pair = None;
        'o: for u in 0..n {
            if lvl.cluster_of[u] != cu || u == rep_edge.u.index() {
                continue;
            }
            for v in 0..n {
                if lvl.cluster_of[v] != cv || v == rep_edge.v.index() {
                    continue;
                }
                if h0.edge_weight(u.into(), v.into()).is_none() {
                    pair = Some((u, v));
                    break 'o;
                }
            }
        }
        let Some((u, v)) = pair else { return };
        let before = engine
            .sparsifier()
            .edge_weight(rep_edge.u, rep_edge.v)
            .unwrap();
        let r = engine.insert_batch(&[(u, v, 2.5)], &cfg).unwrap();
        assert_eq!(r.merged, 1);
        let after = engine
            .sparsifier()
            .edge_weight(rep_edge.u, rep_edge.v)
            .unwrap();
        assert!(
            (after - before - 2.5).abs() < 1e-12,
            "weight went elsewhere"
        );
    }

    #[test]
    fn filtering_level_override_is_respected() {
        let (g, h0) = sparsifier_fixture(12, 10);
        let mut engine = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let stream = InsertionStream::generate(
            &g,
            &StreamConfig {
                batches: 1,
                edges_per_batch: 20,
                ..Default::default()
            },
        );
        let top = engine.hierarchy().num_levels() - 1;
        let r = engine
            .insert_batch(
                &stream.batches()[0],
                &UpdateConfig {
                    target_condition: 4.0,               // would pick a fine level…
                    filtering_level_override: Some(top), // …but we force the top
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(r.filtering_level, top);
        assert_eq!(r.included, 0, "top level absorbs everything");
        // Out-of-range overrides clamp instead of panicking.
        let r = engine
            .insert_batch(
                &[],
                &UpdateConfig {
                    filtering_level_override: Some(9999),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(r.filtering_level, top);
    }

    #[test]
    fn delete_of_included_edge_restores_edge_count() {
        let (_g, h0) = sparsifier_fixture(14, 12);
        let mut engine = InGrassEngine::setup(
            &h0,
            &SetupConfig::default().with_drift(crate::DriftPolicy::never()),
        )
        .unwrap();
        let cfg = UpdateConfig {
            target_condition: 8.0, // fine level → the insert is included
            ..Default::default()
        };
        // Find a pair the engine will include (unique cluster pair).
        let level = engine.filtering_level(cfg.target_condition);
        let lvl = engine.hierarchy().level(level).clone();
        let n = h0.num_nodes();
        let mut pair = None;
        'outer: for u in 0..n {
            for v in (u + 1)..n {
                let (cu, cv) = (lvl.cluster_of[u], lvl.cluster_of[v]);
                if cu != cv
                    && engine
                        .connectivity()
                        .connecting_edge(level, cu, cv)
                        .is_none()
                    && h0.edge_weight(u.into(), v.into()).is_none()
                {
                    pair = Some((u, v));
                    break 'outer;
                }
            }
        }
        let (u, v) = pair.expect("fine level has unconnected cluster pairs");
        let before = engine.sparsifier().num_edges();
        let r = engine
            .apply_batch(&[UpdateOp::Insert { u, v, weight: 1.0 }], &cfg)
            .unwrap();
        assert_eq!(r.included, 1);
        assert_eq!(engine.sparsifier().num_edges(), before + 1);

        let r = engine
            .apply_batch(&[UpdateOp::Delete { u, v }], &cfg)
            .unwrap();
        assert_eq!(r.deleted, 1, "{r:?}");
        assert_eq!(engine.sparsifier().num_edges(), before);
        assert!(is_connected(&engine.sparsifier_graph()));
        assert_eq!(engine.ledger().deletes(), 1);
        assert!(engine.ledger().drift().deleted_weight_fraction() > 0.0);
    }

    #[test]
    fn bridge_deletion_relinks_and_preserves_connectivity() {
        // A path graph: every edge is a bridge.
        let h0 = Graph::from_edges(
            6,
            &[
                (0, 1, 2.0),
                (1, 2, 2.0),
                (2, 3, 2.0),
                (3, 4, 2.0),
                (4, 5, 2.0),
            ],
        )
        .unwrap();
        let mut engine = InGrassEngine::setup(
            &h0,
            &SetupConfig::default().with_drift(crate::DriftPolicy::never()),
        )
        .unwrap();
        let cfg = UpdateConfig::default();
        let r = engine
            .apply_batch(&[UpdateOp::Delete { u: 2, v: 3 }], &cfg)
            .unwrap();
        assert_eq!(r.relinked, 1, "{r:?}");
        assert_eq!(r.deleted, 0);
        let snap = engine.sparsifier_graph();
        assert!(is_connected(&snap));
        // The re-link weight is capped by the deleted weight and positive.
        let w = snap.edge_weight(2.into(), 3.into()).unwrap();
        assert!(w > 0.0 && w <= 2.0, "relink weight {w}");
        assert_eq!(engine.ledger().relinks(), 1);
    }

    #[test]
    fn reweight_overwrites_in_place_and_vacuous_ops_are_counted() {
        let (_g, h0) = sparsifier_fixture(10, 13);
        let mut engine = InGrassEngine::setup(
            &h0,
            &SetupConfig::default().with_drift(crate::DriftPolicy::never()),
        )
        .unwrap();
        let cfg = UpdateConfig::default();
        let e = h0.edges()[0];
        let (u, v) = (e.u.index(), e.v.index());
        let r = engine
            .apply_batch(
                &[UpdateOp::Reweight {
                    u,
                    v,
                    weight: e.weight * 0.5,
                }],
                &cfg,
            )
            .unwrap();
        assert_eq!(r.reweighted, 1);
        let got = engine.sparsifier().edge_weight(e.u, e.v).unwrap();
        assert!((got - e.weight * 0.5).abs() < 1e-12);
        assert_eq!(engine.ledger().reweights(), 1);

        // A non-edge: both delete and reweight are vacuous, not errors.
        let n = h0.num_nodes();
        let mut non_edge = None;
        'outer: for a in 0..n {
            for b in (a + 1)..n {
                if h0.edge_weight(a.into(), b.into()).is_none() {
                    non_edge = Some((a, b));
                    break 'outer;
                }
            }
        }
        let (a, b) = non_edge.unwrap();
        let r = engine
            .apply_batch(
                &[
                    UpdateOp::Delete { u: a, v: b },
                    UpdateOp::Reweight {
                        u: a,
                        v: b,
                        weight: 1.0,
                    },
                ],
                &cfg,
            )
            .unwrap();
        assert_eq!(r.vacuous, 2);
        assert_eq!(r.total_processed(), 2);
        assert_eq!(engine.ledger().vacuous(), 2);
    }

    #[test]
    fn rip_up_sequence_preserves_order_within_batch() {
        // Delete + re-insert of the same pair in ONE batch must end with the
        // edge present (the delete may not be reordered after the insert).
        let (_g, h0) = sparsifier_fixture(12, 14);
        let mut engine = InGrassEngine::setup(
            &h0,
            &SetupConfig::default().with_drift(crate::DriftPolicy::never()),
        )
        .unwrap();
        let cfg = UpdateConfig {
            target_condition: 8.0,
            ..Default::default()
        };
        let e = h0.edges()[3];
        let (u, v) = (e.u.index(), e.v.index());
        let before = engine.sparsifier().total_weight();
        let r = engine
            .apply_batch(
                &[
                    UpdateOp::Delete { u, v },
                    UpdateOp::Insert { u, v, weight: 9.0 },
                ],
                &cfg,
            )
            .unwrap();
        assert_eq!(r.total_processed(), 2);
        assert!(r.deleted + r.relinked == 1, "{r:?}");
        // The 9.0 landed somewhere (included on the pair, merged, or
        // redistributed) — total weight reflects delete-then-insert.
        let after = engine.sparsifier().total_weight();
        let expected_delta = 9.0 - e.weight;
        assert!(
            (after - before - expected_delta).abs() < 1e-9 + 2.0 * e.weight,
            "Δ={} vs expected ≈{}",
            after - before,
            expected_delta
        );
        assert!(is_connected(&engine.sparsifier_graph()));
    }

    #[test]
    fn drift_threshold_triggers_automatic_resetup() {
        let (_g, h0) = sparsifier_fixture(12, 15);
        let cfg = SetupConfig::default().with_drift(crate::DriftPolicy {
            max_deleted_weight_fraction: 0.02,
            max_distortion_fraction: 1e9,
            max_cluster_staleness: u32::MAX,
            auto_resetup: true,
        });
        let mut engine = InGrassEngine::setup(&h0, &cfg).unwrap();
        assert_eq!(engine.resetups(), 0);
        let ucfg = UpdateConfig::default();
        // Delete edges until the deleted-weight fraction crosses 2 %.
        let mut triggered = false;
        for e in h0.edges().iter().take(h0.num_edges() / 2) {
            let r = engine
                .apply_batch(
                    &[UpdateOp::Delete {
                        u: e.u.index(),
                        v: e.v.index(),
                    }],
                    &ucfg,
                )
                .unwrap();
            if let Some(reason) = r.resetup {
                assert_eq!(reason, crate::ResetupReason::DeletedWeight);
                // Drift reset by the re-setup.
                assert_eq!(r.drift_deleted_weight_fraction, 0.0);
                triggered = true;
                break;
            }
        }
        assert!(triggered, "drift never crossed the 2% threshold");
        assert_eq!(engine.resetups(), 1);
        assert!(is_connected(&engine.sparsifier_graph()));
        // The engine keeps serving updates after the re-setup.
        let r = engine.insert_batch(&[], &ucfg).unwrap();
        assert_eq!(r.batch_size, 0);
    }

    #[test]
    fn insert_batch_matches_apply_batch_with_insert_ops() {
        let (g, h0) = sparsifier_fixture(12, 16);
        let stream = InsertionStream::paper_default(&g, 5);
        let cfg = UpdateConfig::default();
        let mut a = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let mut b = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        for batch in stream.batches() {
            let ra = a.insert_batch(batch, &cfg).unwrap();
            let ops: Vec<UpdateOp> = batch
                .iter()
                .map(|&(u, v, weight)| UpdateOp::Insert { u, v, weight })
                .collect();
            let rb = b.apply_batch(&ops, &cfg).unwrap();
            assert_eq!(
                (ra.included, ra.merged, ra.redistributed),
                (rb.included, rb.merged, rb.redistributed)
            );
        }
        let (ga, gb) = (a.sparsifier_graph(), b.sparsifier_graph());
        assert_eq!(ga.num_edges(), gb.num_edges());
        assert!((ga.total_weight() - gb.total_weight()).abs() < 1e-12);
    }

    #[test]
    fn jl_and_local_backends_also_setup() {
        use crate::config::ResistanceBackend;
        let (_g, h0) = sparsifier_fixture(10, 11);
        for backend in [
            ResistanceBackend::Jl(ingrass_resistance::JlConfig::default()),
            ResistanceBackend::LocalOnly,
        ] {
            let engine =
                InGrassEngine::setup(&h0, &SetupConfig::default().with_resistance(backend))
                    .unwrap();
            assert!(engine.setup_report().levels >= 2);
            assert_eq!(engine.hierarchy().levels().last().unwrap().num_clusters, 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn prop_update_invariants(
            seed in 0u64..500,
            batch_size in 1usize..60,
            target in 4.0f64..400.0,
        ) {
            let (g, h0) = sparsifier_fixture(10, seed);
            let mut engine = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
            let stream = InsertionStream::generate(&g, &StreamConfig {
                batches: 1,
                edges_per_batch: batch_size,
                seed,
                ..Default::default()
            });
            let batch = &stream.batches()[0];
            let w_new: f64 = batch.iter().map(|&(_, _, w)| w).sum();
            let w_before = engine.sparsifier().total_weight();
            let r = engine.insert_batch(batch, &UpdateConfig {
                target_condition: target,
                ..Default::default()
            }).unwrap();
            // Accounting closes.
            prop_assert_eq!(r.total_processed(), batch.len());
            // Weight conservation.
            let w_after = engine.sparsifier().total_weight();
            prop_assert!((w_after - w_before - w_new).abs() < 1e-7 * (1.0 + w_new));
            // Connectivity preserved.
            prop_assert!(is_connected(&engine.sparsifier_graph()));
        }
    }
}
