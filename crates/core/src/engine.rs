//! The incremental sparsification engine (setup + update phases).

use crate::config::{ResistanceBackend, SetupConfig, UpdateConfig};
use crate::connectivity::ClusterConnectivity;
use crate::error::InGrassError;
use crate::lrd::LrdHierarchy;
use crate::report::{EdgeOutcome, PhaseTimer, SetupReport, UpdateReport};
use crate::Result;
use ingrass_graph::{is_connected, DynGraph, Graph, NodeId};
use ingrass_resistance::{JlEmbedder, KrylovEmbedder, ResistanceEstimator};

/// The inGRASS engine: owns the sparsifier `H` and the setup-phase
/// artifacts (LRD hierarchy + cluster connectivity), and applies streamed
/// edge insertions in `O(log N)` per edge.
///
/// See the [crate-level documentation](crate) for the full algorithm and a
/// quickstart; paper: Algorithm 1.
#[derive(Debug)]
pub struct InGrassEngine {
    hierarchy: LrdHierarchy,
    connectivity: ClusterConnectivity,
    h: DynGraph,
    setup_report: SetupReport,
    updates_applied: usize,
}

impl InGrassEngine {
    /// Runs the one-time setup phase on the initial sparsifier `h0`.
    ///
    /// Steps (paper Algorithm 1, lines 1–3): estimate the effective
    /// resistance of every sparsifier edge, build the multilevel LRD
    /// decomposition, and index cluster connectivity at every level.
    ///
    /// # Errors
    /// [`InGrassError::BadSparsifier`] if `h0` is empty or disconnected;
    /// [`InGrassError::InvalidConfig`] for bad configuration values.
    pub fn setup(h0: &Graph, cfg: &SetupConfig) -> Result<Self> {
        let mut timer = PhaseTimer::start();
        if h0.num_nodes() == 0 {
            return Err(InGrassError::BadSparsifier("no nodes".into()));
        }
        if !is_connected(h0) {
            return Err(InGrassError::BadSparsifier(
                "initial sparsifier must be connected".into(),
            ));
        }

        // Phase 1: per-edge effective resistance estimates. (The lap up to
        // here is input validation; it belongs to no phase.)
        timer.lap();
        let edge_resistance: Vec<f64> = match &cfg.resistance {
            ResistanceBackend::Krylov(kc) => {
                let kc = kc.clone().with_seed(cfg.seed);
                let emb = KrylovEmbedder::build(h0, &kc)
                    .map_err(|e| InGrassError::BadSparsifier(e.to_string()))?;
                emb.edge_resistances(h0)
            }
            ResistanceBackend::Jl(jc) => {
                let jc = jc.clone().with_seed(cfg.seed);
                let emb = JlEmbedder::build(h0, &jc)
                    .map_err(|e| InGrassError::BadSparsifier(e.to_string()))?;
                emb.edge_resistances(h0)
            }
            ResistanceBackend::LocalOnly => h0.edges().iter().map(|e| 1.0 / e.weight).collect(),
        };
        let resistance_time = timer.lap();

        // Phase 2: multilevel LRD decomposition.
        let hierarchy = LrdHierarchy::build(
            h0,
            &edge_resistance,
            cfg.initial_diameter,
            cfg.diameter_growth,
            cfg.max_levels,
        )?;
        let lrd_time = timer.lap();

        // Phase 3: multilevel sparse connectivity structure.
        let h = DynGraph::from_graph(h0);
        let connectivity = ClusterConnectivity::build(&h, &hierarchy);
        let connectivity_time = timer.lap();

        let setup_report = SetupReport {
            nodes: h0.num_nodes(),
            edges: h0.num_edges(),
            levels: hierarchy.num_levels(),
            resistance_time,
            lrd_time,
            connectivity_time,
            total_time: timer.total(),
        };
        Ok(InGrassEngine {
            hierarchy,
            connectivity,
            h,
            setup_report,
            updates_applied: 0,
        })
    }

    /// Applies one batch of newly inserted edges `(u, v, weight)` (paper
    /// Algorithm 1, lines 4–5).
    ///
    /// The batch is validated up front (no partial application on invalid
    /// input), ranked by estimated spectral distortion `w·R̂` (descending,
    /// unless disabled), and each edge is included / merged / redistributed
    /// at the filtering level derived from `cfg.target_condition`.
    ///
    /// # Errors
    /// [`InGrassError::InvalidConfig`] if `target_condition < 2`;
    /// [`InGrassError::Graph`] if an edge references an unknown node, is a
    /// self-loop, or carries a non-positive weight.
    pub fn insert_batch(
        &mut self,
        edges: &[(usize, usize, f64)],
        cfg: &UpdateConfig,
    ) -> Result<UpdateReport> {
        let timer = PhaseTimer::start();
        if cfg.target_condition < 2.0 {
            return Err(InGrassError::InvalidConfig(format!(
                "target condition must be ≥ 2, got {}",
                cfg.target_condition
            )));
        }
        let n = self.h.num_nodes();
        for &(u, v, w) in edges {
            if u >= n || v >= n {
                return Err(InGrassError::Graph(format!(
                    "edge ({u},{v}) out of bounds for {n} nodes"
                )));
            }
            if u == v {
                return Err(InGrassError::Graph(format!("self-loop at node {u}")));
            }
            if w <= 0.0 || !w.is_finite() {
                return Err(InGrassError::Graph(format!(
                    "edge ({u},{v}) has invalid weight {w}"
                )));
            }
        }

        let level = cfg
            .filtering_level_override
            .map(|l| l.min(self.hierarchy.num_levels() - 1))
            .unwrap_or_else(|| self.hierarchy.filtering_level(cfg.target_condition));

        // Spectral distortion estimation (update phase 1): O(levels) per
        // edge via the LRD embedding. The scores are independent reads of
        // the hierarchy, so huge batches fan out across threads (scores land
        // by index — identical at any width); typical O(10³)-edge batches
        // stay serial per the shared ingrass-par threshold.
        let hierarchy = &self.hierarchy;
        let scores: Vec<f64> = ingrass_par::par_map_auto(edges, |&(u, v, w)| {
            let r = hierarchy.resistance_bound(NodeId::new(u), NodeId::new(v));
            w * r.min(f64::MAX / 2.0)
        });
        let mut order: Vec<(usize, f64)> = scores.into_iter().enumerate().collect();
        if cfg.sort_by_distortion {
            order.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        }
        let max_distortion = order.iter().map(|&(_, d)| d).fold(0.0f64, f64::max);

        // Spectral similarity filtering (update phase 2).
        let mut included = 0usize;
        let mut merged = 0usize;
        let mut redistributed = 0usize;
        for &(idx, _) in &order {
            let (u, v, w) = edges[idx];
            match self.apply_edge(NodeId::new(u), NodeId::new(v), w, level)? {
                EdgeOutcome::Included => included += 1,
                EdgeOutcome::Merged => merged += 1,
                EdgeOutcome::Redistributed => redistributed += 1,
            }
        }
        self.updates_applied += edges.len();

        Ok(UpdateReport {
            batch_size: edges.len(),
            included,
            merged,
            redistributed,
            filtering_level: level,
            max_distortion,
            elapsed: timer.total(),
        })
    }

    /// Applies one edge at the given filtering level and reports its fate.
    fn apply_edge(&mut self, u: NodeId, v: NodeId, w: f64, level: usize) -> Result<EdgeOutcome> {
        let lvl = self.hierarchy.level(level);
        let (cu, cv) = (lvl.cluster_of[u.index()], lvl.cluster_of[v.index()]);

        if cu == cv {
            // Same cluster: discard and spread the weight proportionally
            // over the cluster's internal sparsifier edges.
            let intra = self.connectivity.intra_edges(level, cu);
            if !intra.is_empty() {
                let total: f64 = intra
                    .iter()
                    .filter_map(|&e| self.h.edge(e))
                    .map(|e| e.weight)
                    .sum();
                if total > 0.0 {
                    let ids: Vec<_> = intra.to_vec();
                    for e in ids {
                        if let Some(edge) = self.h.edge(e) {
                            let share = w * edge.weight / total;
                            self.h
                                .add_weight(e, share)
                                .map_err(|err| InGrassError::Graph(err.to_string()))?;
                        }
                    }
                    return Ok(EdgeOutcome::Redistributed);
                }
            }
            // Defensive fall-through (a cluster with no internal edges
            // cannot arise from edge contraction, but stay safe): include.
        } else if let Some(rep) = self.connectivity.connecting_edge(level, cu, cv) {
            // Clusters already connected: absorb the weight into the
            // existing representative edge.
            self.h
                .add_weight(rep, w)
                .map_err(|err| InGrassError::Graph(err.to_string()))?;
            return Ok(EdgeOutcome::Merged);
        }

        // Spectrally unique: include and index at every level.
        let (id, created) = self
            .h
            .add_edge(u, v, w)
            .map_err(|err| InGrassError::Graph(err.to_string()))?;
        if created {
            self.connectivity.register_edge(&self.hierarchy, id, u, v);
        }
        Ok(EdgeOutcome::Included)
    }

    /// Estimated spectral distortion `w · R̂(u, v)` of a candidate edge.
    pub fn estimate_distortion(&self, u: NodeId, v: NodeId, w: f64) -> f64 {
        w * self.hierarchy.resistance_bound(u, v)
    }

    /// The filtering level that a target condition number selects.
    pub fn filtering_level(&self, target_condition: f64) -> usize {
        self.hierarchy.filtering_level(target_condition)
    }

    /// The live sparsifier.
    pub fn sparsifier(&self) -> &DynGraph {
        &self.h
    }

    /// Immutable snapshot of the sparsifier (for matrix export and
    /// measurement).
    pub fn sparsifier_graph(&self) -> Graph {
        self.h.to_graph()
    }

    /// The LRD hierarchy built during setup.
    pub fn hierarchy(&self) -> &LrdHierarchy {
        &self.hierarchy
    }

    /// The multilevel cluster-connectivity index.
    pub fn connectivity(&self) -> &ClusterConnectivity {
        &self.connectivity
    }

    /// Setup-phase statistics.
    pub fn setup_report(&self) -> &SetupReport {
        &self.setup_report
    }

    /// Total number of stream edges processed so far.
    pub fn updates_applied(&self) -> usize {
        self.updates_applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SetupConfig, UpdateConfig};
    use ingrass_baselines::GrassSparsifier;
    use ingrass_gen::{grid_2d, InsertionStream, StreamConfig, WeightModel};
    use proptest::prelude::*;

    fn sparsifier_fixture(side: usize, seed: u64) -> (Graph, Graph) {
        let g = grid_2d(side, side, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed);
        let h0 = GrassSparsifier::default()
            .by_offtree_density(&g, 0.10)
            .unwrap()
            .graph;
        (g, h0)
    }

    #[test]
    fn setup_produces_log_levels() {
        let (_g, h0) = sparsifier_fixture(16, 1);
        let engine = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let report = engine.setup_report();
        assert_eq!(report.nodes, 256);
        assert!(
            report.levels >= 3 && report.levels <= 24,
            "{}",
            report.levels
        );
        assert_eq!(engine.sparsifier().num_edges(), h0.num_edges());
    }

    #[test]
    fn setup_rejects_disconnected_sparsifier() {
        let h0 = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        assert!(matches!(
            InGrassEngine::setup(&h0, &SetupConfig::default()),
            Err(InGrassError::BadSparsifier(_))
        ));
    }

    #[test]
    fn all_three_outcomes_occur() {
        let (_g, h0) = sparsifier_fixture(16, 2);
        let mut engine = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let cfg = UpdateConfig {
            target_condition: 60.0,
            ..Default::default()
        };
        let level = engine.filtering_level(cfg.target_condition);
        assert!(level > 0, "target must select a non-trivial level");
        let lvl = engine.hierarchy().level(level).clone();

        // Craft one edge per outcome by inspecting the hierarchy.
        let n = h0.num_nodes();
        // (a) same cluster.
        let mut intra_pair = None;
        'outer: for u in 0..n {
            for v in (u + 1)..n {
                if lvl.cluster_of[u] == lvl.cluster_of[v]
                    && h0.edge_weight(u.into(), v.into()).is_none()
                {
                    intra_pair = Some((u, v));
                    break 'outer;
                }
            }
        }
        // (b) clusters already connected by an H edge, endpoints not
        // adjacent in H.
        let mut merge_pair = None;
        'outer2: for e in h0.edges() {
            let (cu, cv) = (lvl.cluster_of[e.u.index()], lvl.cluster_of[e.v.index()]);
            if cu == cv {
                continue;
            }
            for u in 0..n {
                if lvl.cluster_of[u] != cu || u == e.u.index() {
                    continue;
                }
                for v in 0..n {
                    if lvl.cluster_of[v] != cv || v == e.v.index() {
                        continue;
                    }
                    if h0.edge_weight(u.into(), v.into()).is_none() && u != v {
                        merge_pair = Some((u, v));
                        break 'outer2;
                    }
                }
            }
        }
        let (iu, iv) = intra_pair.expect("grid clusters have non-adjacent internal pairs");
        let (mu, mv) = merge_pair.expect("connected cluster pairs exist");

        let before_edges = engine.sparsifier().num_edges();
        let r1 = engine.insert_batch(&[(iu, iv, 1.0)], &cfg).unwrap();
        assert_eq!(r1.redistributed, 1, "intra-cluster edge must redistribute");
        assert_eq!(engine.sparsifier().num_edges(), before_edges);

        let r2 = engine.insert_batch(&[(mu, mv, 1.0)], &cfg).unwrap();
        assert_eq!(r2.merged, 1, "connected cluster pair must merge");
        assert_eq!(engine.sparsifier().num_edges(), before_edges);

        // (c) find a cluster pair with no connecting edge.
        let mut include_pair = None;
        {
            let conn = engine.connectivity();
            'outer3: for u in 0..n {
                for v in (u + 1)..n {
                    let (cu, cv) = (lvl.cluster_of[u], lvl.cluster_of[v]);
                    if cu != cv && conn.connecting_edge(level, cu, cv).is_none() {
                        include_pair = Some((u, v));
                        break 'outer3;
                    }
                }
            }
        }
        if let Some((nu, nv)) = include_pair {
            let r3 = engine.insert_batch(&[(nu, nv, 1.0)], &cfg).unwrap();
            assert_eq!(r3.included, 1, "unique cluster pair must include");
            assert_eq!(engine.sparsifier().num_edges(), before_edges + 1);
        }
    }

    #[test]
    fn weight_is_conserved_across_outcomes() {
        let (g, h0) = sparsifier_fixture(14, 3);
        let mut engine = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let stream = InsertionStream::generate(
            &g,
            &StreamConfig {
                batches: 1,
                edges_per_batch: 60,
                ..Default::default()
            },
        );
        let batch = &stream.batches()[0];
        let new_weight: f64 = batch.iter().map(|&(_, _, w)| w).sum();
        let before = engine.sparsifier().total_weight();
        let report = engine
            .insert_batch(batch, &UpdateConfig::default())
            .unwrap();
        let after = engine.sparsifier().total_weight();
        assert_eq!(report.total_processed(), batch.len());
        assert!(
            (after - before - new_weight).abs() < 1e-8 * (1.0 + new_weight),
            "weight leak: Δ={} vs inserted {}",
            after - before,
            new_weight
        );
    }

    #[test]
    fn sparsifier_stays_connected_under_updates() {
        let (g, h0) = sparsifier_fixture(12, 4);
        let mut engine = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let stream = InsertionStream::paper_default(&g, 8);
        for batch in stream.batches() {
            engine
                .insert_batch(batch, &UpdateConfig::default())
                .unwrap();
        }
        assert!(is_connected(&engine.sparsifier_graph()));
        assert_eq!(engine.updates_applied(), stream.total_edges());
    }

    #[test]
    fn tighter_target_condition_admits_more_edges() {
        // A small C forces a fine filtering level → more unique cluster
        // pairs → more inclusions; a huge C collapses everything to the top
        // cluster → everything redistributes.
        let (g, h0) = sparsifier_fixture(14, 5);
        let stream = InsertionStream::generate(
            &g,
            &StreamConfig {
                batches: 1,
                edges_per_batch: 80,
                ..Default::default()
            },
        );
        let batch = &stream.batches()[0];

        let mut tight = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let r_tight = tight
            .insert_batch(
                batch,
                &UpdateConfig {
                    target_condition: 4.0,
                    ..Default::default()
                },
            )
            .unwrap();

        let mut loose = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let r_loose = loose
            .insert_batch(
                batch,
                &UpdateConfig {
                    target_condition: 1e9,
                    ..Default::default()
                },
            )
            .unwrap();

        assert!(
            r_tight.included > r_loose.included,
            "tight {} vs loose {}",
            r_tight.included,
            r_loose.included
        );
        assert_eq!(r_loose.included, 0, "top level must absorb everything");
    }

    #[test]
    fn invalid_batches_are_rejected_atomically() {
        let (_g, h0) = sparsifier_fixture(8, 6);
        let mut engine = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let before = engine.sparsifier().total_weight();
        let cfg = UpdateConfig::default();
        assert!(engine.insert_batch(&[(0, 0, 1.0)], &cfg).is_err());
        assert!(engine.insert_batch(&[(0, 9999, 1.0)], &cfg).is_err());
        assert!(engine.insert_batch(&[(0, 1, -2.0)], &cfg).is_err());
        assert!(engine
            .insert_batch(
                &[(0, 1, 1.0)],
                &UpdateConfig {
                    target_condition: 1.0,
                    ..Default::default()
                }
            )
            .is_err());
        assert_eq!(engine.sparsifier().total_weight(), before);
        assert_eq!(engine.updates_applied(), 0);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (_g, h0) = sparsifier_fixture(8, 7);
        let mut engine = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let r = engine.insert_batch(&[], &UpdateConfig::default()).unwrap();
        assert_eq!(r.batch_size, 0);
        assert_eq!(r.total_processed(), 0);
    }

    #[test]
    fn engine_is_deterministic() {
        let (g, h0) = sparsifier_fixture(12, 8);
        let stream = InsertionStream::paper_default(&g, 3);
        let run = || {
            let mut e = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
            for b in stream.batches() {
                e.insert_batch(b, &UpdateConfig::default()).unwrap();
            }
            let snap = e.sparsifier_graph();
            (snap.num_edges(), snap.total_weight())
        };
        let (e1, w1) = run();
        let (e2, w2) = run();
        assert_eq!(e1, e2);
        assert!((w1 - w2).abs() < 1e-12);
    }

    #[test]
    fn merged_weight_lands_on_representative_edge() {
        let (_g, h0) = sparsifier_fixture(16, 9);
        let mut engine = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let cfg = UpdateConfig {
            target_condition: 60.0,
            ..Default::default()
        };
        let level = engine.filtering_level(cfg.target_condition);
        let lvl = engine.hierarchy().level(level).clone();
        // Find a cluster pair connected by exactly one H edge and a fresh
        // node pair spanning those clusters.
        let mut found = None;
        for (id, e) in h0.edges().iter().enumerate() {
            let (cu, cv) = (lvl.cluster_of[e.u.index()], lvl.cluster_of[e.v.index()]);
            if cu == cv {
                continue;
            }
            let crossings = h0
                .edges()
                .iter()
                .filter(|e2| {
                    let (a, b) = (lvl.cluster_of[e2.u.index()], lvl.cluster_of[e2.v.index()]);
                    (a.min(b), a.max(b)) == (cu.min(cv), cu.max(cv))
                })
                .count();
            if crossings == 1 {
                found = Some((id, *e, cu, cv));
                break;
            }
        }
        let Some((_, rep_edge, cu, cv)) = found else {
            return; // no singleton pair in this fixture — vacuous
        };
        // A new pair in (cu, cv) different from the representative.
        let n = h0.num_nodes();
        let mut pair = None;
        'o: for u in 0..n {
            if lvl.cluster_of[u] != cu || u == rep_edge.u.index() {
                continue;
            }
            for v in 0..n {
                if lvl.cluster_of[v] != cv || v == rep_edge.v.index() {
                    continue;
                }
                if h0.edge_weight(u.into(), v.into()).is_none() {
                    pair = Some((u, v));
                    break 'o;
                }
            }
        }
        let Some((u, v)) = pair else { return };
        let before = engine
            .sparsifier()
            .edge_weight(rep_edge.u, rep_edge.v)
            .unwrap();
        let r = engine.insert_batch(&[(u, v, 2.5)], &cfg).unwrap();
        assert_eq!(r.merged, 1);
        let after = engine
            .sparsifier()
            .edge_weight(rep_edge.u, rep_edge.v)
            .unwrap();
        assert!(
            (after - before - 2.5).abs() < 1e-12,
            "weight went elsewhere"
        );
    }

    #[test]
    fn filtering_level_override_is_respected() {
        let (g, h0) = sparsifier_fixture(12, 10);
        let mut engine = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let stream = InsertionStream::generate(
            &g,
            &StreamConfig {
                batches: 1,
                edges_per_batch: 20,
                ..Default::default()
            },
        );
        let top = engine.hierarchy().num_levels() - 1;
        let r = engine
            .insert_batch(
                &stream.batches()[0],
                &UpdateConfig {
                    target_condition: 4.0,               // would pick a fine level…
                    filtering_level_override: Some(top), // …but we force the top
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(r.filtering_level, top);
        assert_eq!(r.included, 0, "top level absorbs everything");
        // Out-of-range overrides clamp instead of panicking.
        let r = engine
            .insert_batch(
                &[],
                &UpdateConfig {
                    filtering_level_override: Some(9999),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(r.filtering_level, top);
    }

    #[test]
    fn jl_and_local_backends_also_setup() {
        use crate::config::ResistanceBackend;
        let (_g, h0) = sparsifier_fixture(10, 11);
        for backend in [
            ResistanceBackend::Jl(ingrass_resistance::JlConfig::default()),
            ResistanceBackend::LocalOnly,
        ] {
            let engine =
                InGrassEngine::setup(&h0, &SetupConfig::default().with_resistance(backend))
                    .unwrap();
            assert!(engine.setup_report().levels >= 2);
            assert_eq!(engine.hierarchy().levels().last().unwrap().num_clusters, 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn prop_update_invariants(
            seed in 0u64..500,
            batch_size in 1usize..60,
            target in 4.0f64..400.0,
        ) {
            let (g, h0) = sparsifier_fixture(10, seed);
            let mut engine = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
            let stream = InsertionStream::generate(&g, &StreamConfig {
                batches: 1,
                edges_per_batch: batch_size,
                seed,
                ..Default::default()
            });
            let batch = &stream.batches()[0];
            let w_new: f64 = batch.iter().map(|&(_, _, w)| w).sum();
            let w_before = engine.sparsifier().total_weight();
            let r = engine.insert_batch(batch, &UpdateConfig {
                target_condition: target,
                ..Default::default()
            }).unwrap();
            // Accounting closes.
            prop_assert_eq!(r.total_processed(), batch.len());
            // Weight conservation.
            let w_after = engine.sparsifier().total_weight();
            prop_assert!((w_after - w_before - w_new).abs() < 1e-7 * (1.0 + w_new));
            // Connectivity preserved.
            prop_assert!(is_connected(&engine.sparsifier_graph()));
        }
    }
}
