//! The sparsifier as a preconditioner: grounded sparse Cholesky of the
//! live sparsifier Laplacian, tagged with the engine epoch that built it.
//!
//! This is the hand-off point between the incremental engine and the solve
//! subsystem (`ingrass-solve`): the engine maintains `H ≈ G` spectrally, so
//! an *exact* factorisation of `L_H` preconditions CG on `L_G` with
//! iteration count `O(√κ(L_H⁻¹L_G))` — the very condition number the
//! update phase keeps bounded. Callers cache the factor and rebuild only
//! when [`crate::InGrassEngine::epoch`] moves (a drift-triggered re-setup
//! replaced the hierarchy, so the sparsifier may have changed shape
//! substantially).

use crate::error::InGrassError;
use crate::Result;
use ingrass_graph::DynGraph;
use ingrass_linalg::{CsrMatrix, Preconditioner, SparseCholesky};

/// A grounded sparse Cholesky factor of a sparsifier Laplacian, usable as
/// a [`Preconditioner`] for full-dimension Laplacian PCG.
///
/// Graph Laplacians are singular (the constant vector spans the null
/// space); grounding — deleting one node's row and column — leaves an SPD
/// matrix for a connected graph. `apply` solves the grounded system and
/// pins the grounded node's potential to zero; combined with the constant
/// deflation [`ingrass_linalg::pcg`] performs anyway for Laplacian systems,
/// the map is symmetric positive definite on the relevant subspace.
///
/// Built by [`crate::InGrassEngine::preconditioner`]; the attached
/// [`SparsifierPrecond::epoch`] is the engine epoch at build time, which is
/// what `ingrass-solve` keys its factorization cache on.
#[derive(Debug, Clone)]
pub struct SparsifierPrecond {
    n: usize,
    ground: usize,
    epoch: u64,
    chol: SparseCholesky,
    /// Fused permutation: `gperm[k]` is the *original node index* of the
    /// factor's pivot `k` (the Cholesky ordering composed with the
    /// ground-skip re-indexing). Lets `apply` gather/scatter straight
    /// between the full-dimension vectors and the permuted solve basis
    /// with a single scratch allocation per call.
    gperm: Vec<u32>,
}

impl SparsifierPrecond {
    /// Factors the grounded Laplacian of the given sparsifier.
    ///
    /// # Errors
    /// [`InGrassError::BadSparsifier`] if the grounded Laplacian is not
    /// positive definite (the sparsifier is disconnected or numerically
    /// degenerate).
    pub(crate) fn build(h: &DynGraph, epoch: u64) -> Result<Self> {
        let n = h.num_nodes();
        let ground = 0usize;
        // Grounded Laplacian straight from the edge list: node `ground`'s
        // row/column dropped, the rest re-indexed by skipping it.
        let shift = |x: usize| if x > ground { x - 1 } else { x };
        let mut trip: Vec<(usize, usize, f64)> = Vec::with_capacity(4 * h.num_edges());
        for (_, e) in h.edges_iter() {
            let (u, v, w) = (e.u.index(), e.v.index(), e.weight);
            let keep_u = u != ground;
            let keep_v = v != ground;
            if keep_u {
                trip.push((shift(u), shift(u), w));
            }
            if keep_v {
                trip.push((shift(v), shift(v), w));
            }
            if keep_u && keep_v {
                trip.push((shift(u), shift(v), -w));
                trip.push((shift(v), shift(u), -w));
            }
        }
        let grounded = CsrMatrix::from_triplets(n.saturating_sub(1), n.saturating_sub(1), &trip);
        let chol = SparseCholesky::factor(&grounded).map_err(|e| {
            InGrassError::BadSparsifier(format!("sparsifier Laplacian is not SPD grounded: {e}"))
        })?;
        let gperm = chol
            .ordering()
            .iter()
            .map(|&g| {
                let g = g as usize;
                (if g >= ground { g + 1 } else { g }) as u32
            })
            .collect();
        Ok(SparsifierPrecond {
            n,
            ground,
            epoch,
            chol,
            gperm,
        })
    }

    /// The engine epoch (re-setup count) the factor was built at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Stored entries of the Cholesky factor (fill measure).
    pub fn factor_nnz(&self) -> usize {
        self.chol.nnz()
    }

    /// The node whose row/column was grounded out.
    pub fn ground_node(&self) -> usize {
        self.ground
    }
}

impl Preconditioner for SparsifierPrecond {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        debug_assert_eq!(r.len(), self.n);
        debug_assert_eq!(z.len(), self.n);
        if self.n <= 1 {
            z.fill(0.0);
            return;
        }
        // Gather the grounded right-hand side directly into the permuted
        // solve basis, solve in place, scatter back: one scratch vector
        // per apply on a path PCG hits every iteration.
        let mut y: Vec<f64> = self.gperm.iter().map(|&g| r[g as usize]).collect();
        self.chol.solve_permuted_in_place(&mut y);
        z[self.ground] = 0.0;
        for (&g, &yk) in self.gperm.iter().zip(&y) {
            z[g as usize] = yk;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{InGrassEngine, SetupConfig};
    use ingrass_graph::Graph;
    use ingrass_linalg::{pcg, CgOptions, IdentityPrecond};

    fn ring_with_chords() -> Graph {
        let n = 24;
        let mut edges: Vec<(usize, usize, f64)> = (0..n)
            .map(|i| (i, (i + 1) % n, 1.0 + (i % 3) as f64))
            .collect();
        for i in 0..n / 2 {
            edges.push((i, i + n / 2, 0.5));
        }
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn preconditioner_solves_its_own_laplacian_in_one_iteration() {
        let h = ring_with_chords();
        let engine = InGrassEngine::setup(&h, &SetupConfig::default()).unwrap();
        let pre = engine.preconditioner().unwrap();
        assert_eq!(pre.epoch(), 0);
        let l = h.laplacian();
        let n = h.num_nodes();
        let mut b = vec![0.0; n];
        b[2] = 1.0;
        b[17] = -1.0;
        let ones = vec![1.0; n];
        let mut x = vec![0.0; n];
        let res = pcg(&l, &b, &mut x, &pre, Some(&ones), &CgOptions::default());
        assert!(res.converged);
        assert!(
            res.iterations <= 2,
            "exact preconditioner took {} iters",
            res.iterations
        );
    }

    #[test]
    fn preconditioner_beats_identity_on_a_denser_graph() {
        let h = ring_with_chords();
        let engine = InGrassEngine::setup(&h, &SetupConfig::default()).unwrap();
        let pre = engine.preconditioner().unwrap();
        // A "denser original": the sparsifier plus extra chords.
        let mut edges: Vec<(usize, usize, f64)> = h
            .edges()
            .iter()
            .map(|e| (e.u.index(), e.v.index(), e.weight))
            .collect();
        let n = h.num_nodes();
        for i in 0..n {
            edges.push((i, (i + 5) % n, 0.25));
        }
        let g = Graph::from_edges(n, &edges).unwrap();
        let l = g.laplacian();
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        b[n - 1] = -1.0;
        let ones = vec![1.0; n];
        let opts = CgOptions::default().with_rel_tol(1e-8);

        let mut x1 = vec![0.0; n];
        let plain = pcg(
            &l,
            &b,
            &mut x1,
            &IdentityPrecond::new(n),
            Some(&ones),
            &opts,
        );
        let mut x2 = vec![0.0; n];
        let pred = pcg(&l, &b, &mut x2, &pre, Some(&ones), &opts);
        assert!(plain.converged && pred.converged);
        assert!(
            pred.iterations < plain.iterations,
            "preconditioned {} vs plain {}",
            pred.iterations,
            plain.iterations
        );
    }
}
