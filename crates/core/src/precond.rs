//! The sparsifier as a preconditioner: grounded sparse Cholesky of the
//! live sparsifier Laplacian, tagged with the engine epoch that built it.
//!
//! This is the hand-off point between the incremental engine and the solve
//! subsystem (`ingrass-solve`): the engine maintains `H ≈ G` spectrally, so
//! an *exact* factorisation of `L_H` preconditions CG on `L_G` with
//! iteration count `O(√κ(L_H⁻¹L_G))` — the very condition number the
//! update phase keeps bounded. Callers cache the factor and rebuild only
//! when [`crate::InGrassEngine::epoch`] moves (a drift-triggered re-setup
//! replaced the hierarchy, so the sparsifier may have changed shape
//! substantially).

use crate::error::InGrassError;
use crate::lrd::LrdHierarchy;
use crate::ordering::lrd_nested_dissection_order;
use crate::Result;
use ingrass_graph::DynGraph;
use ingrass_linalg::{CsrMatrix, LinalgError, Preconditioner, SparseCholesky};

/// Grounded Laplacian straight from the edge list: node `ground`'s
/// row/column dropped, the rest re-indexed by skipping it.
fn grounded_laplacian(h: &DynGraph, ground: usize) -> CsrMatrix {
    let n = h.num_nodes();
    let shift = |x: usize| if x > ground { x - 1 } else { x };
    let mut trip: Vec<(usize, usize, f64)> = Vec::with_capacity(4 * h.num_edges());
    for (_, e) in h.edges_iter() {
        let (u, v, w) = (e.u.index(), e.v.index(), e.weight);
        let keep_u = u != ground;
        let keep_v = v != ground;
        if keep_u {
            trip.push((shift(u), shift(u), w));
        }
        if keep_v {
            trip.push((shift(v), shift(v), w));
        }
        if keep_u && keep_v {
            trip.push((shift(u), shift(v), -w));
            trip.push((shift(v), shift(u), -w));
        }
    }
    CsrMatrix::from_triplets(n.saturating_sub(1), n.saturating_sub(1), &trip)
}

/// A grounded sparse Cholesky factor of a sparsifier Laplacian, usable as
/// a [`Preconditioner`] for full-dimension Laplacian PCG.
///
/// Graph Laplacians are singular (the constant vector spans the null
/// space); grounding — deleting one node's row and column — leaves an SPD
/// matrix for a connected graph. `apply` solves the grounded system and
/// pins the grounded node's potential to zero; combined with the constant
/// deflation [`ingrass_linalg::pcg`] performs anyway for Laplacian systems,
/// the map is symmetric positive definite on the relevant subspace.
///
/// Built by [`crate::InGrassEngine::preconditioner`]; the attached
/// [`SparsifierPrecond::epoch`] is the engine epoch at build time, which is
/// what `ingrass-solve` keys its factorization cache on.
#[derive(Debug, Clone)]
pub struct SparsifierPrecond {
    n: usize,
    ground: usize,
    epoch: u64,
    /// Stored factor entries at build time — the reference point for the
    /// incremental-update fill budget (the live nnz grows as updates
    /// splice fill in).
    built_nnz: usize,
    /// Stored factor entries when the elimination *ordering* was last
    /// computed. Numeric-only rebuilds ([`Self::rebuild_numeric`]) reuse
    /// the ordering and carry this forward; once a rebuilt factor under
    /// the cached ordering outgrows it by the fill-growth factor the
    /// ordering is stale and the next rebuild recomputes it.
    order_base_nnz: usize,
    chol: SparseCholesky,
    /// Fused permutation: `gperm[k]` is the *original node index* of the
    /// factor's pivot `k` (the Cholesky ordering composed with the
    /// ground-skip re-indexing). Lets `apply` gather/scatter straight
    /// between the full-dimension vectors and the permuted solve basis
    /// with a single scratch allocation per call.
    gperm: Vec<u32>,
}

impl SparsifierPrecond {
    /// Factors the grounded Laplacian of the given sparsifier.
    ///
    /// # Errors
    /// [`InGrassError::BadSparsifier`] if the grounded Laplacian is not
    /// positive definite (the sparsifier is disconnected or numerically
    /// degenerate).
    /// With a hierarchy, the elimination ordering is
    /// [`lrd_nested_dissection_order`] (the LRD cluster tree as a nested
    /// dissection tree); without one it falls back to the AMD-lite
    /// minimum-degree ordering.
    pub(crate) fn build(
        h: &DynGraph,
        epoch: u64,
        hierarchy: Option<&LrdHierarchy>,
    ) -> Result<Self> {
        let n = h.num_nodes();
        let ground = 0usize;
        let grounded = grounded_laplacian(h, ground);
        let chol = match hierarchy.filter(|hier| hier.num_nodes() == n && n > 1) {
            Some(hier) => {
                let order = lrd_nested_dissection_order(
                    hier,
                    h.edges_iter().map(|(_, e)| (e.u.index(), e.v.index())),
                    Some(ground),
                );
                SparseCholesky::factor_with_order(&grounded, &order)
            }
            None => SparseCholesky::factor(&grounded),
        }
        .map_err(|e| {
            InGrassError::BadSparsifier(format!("sparsifier Laplacian is not SPD grounded: {e}"))
        })?;
        Ok(Self::from_factor(n, ground, epoch, chol, None))
    }

    /// Refactors the given sparsifier **numerically only**, reusing this
    /// factor's elimination ordering instead of recomputing one.
    ///
    /// Computing a fill-reducing ordering is the dominant cost of a full
    /// rebuild — far more than the numeric factorization it feeds — and
    /// within one engine epoch the sparsifier's shape drifts slowly, so
    /// the cached ordering stays near-optimal. This is the publish path's
    /// recovery from a fill-budget overrun and its fast path for batches
    /// too large to patch profitably; the `order_base_nnz` reference is
    /// carried forward so staleness ([`Self::order_is_fresh`]) accumulates
    /// across numeric rebuilds until a full rebuild resets it.
    ///
    /// # Errors
    /// [`InGrassError::BadSparsifier`] if the node count changed since the
    /// ordering was computed or the grounded Laplacian is not SPD.
    pub(crate) fn rebuild_numeric(&self, h: &DynGraph, epoch: u64) -> Result<Self> {
        let n = h.num_nodes();
        if n != self.n {
            return Err(InGrassError::BadSparsifier(format!(
                "cached ordering is for {} nodes, sparsifier has {n}",
                self.n
            )));
        }
        let ground = self.ground;
        let grounded = grounded_laplacian(h, ground);
        let order: Vec<usize> = self.chol.ordering().iter().map(|&p| p as usize).collect();
        let chol = SparseCholesky::factor_with_order(&grounded, &order).map_err(|e| {
            InGrassError::BadSparsifier(format!("sparsifier Laplacian is not SPD grounded: {e}"))
        })?;
        Ok(Self::from_factor(
            n,
            ground,
            epoch,
            chol,
            Some(self.order_base_nnz),
        ))
    }

    /// Whether the cached elimination ordering is still worth reusing: the
    /// factor built under it has not outgrown the factor size at ordering
    /// time by more than `growth`. Once this turns `false`, the next
    /// rebuild should recompute the ordering (a full
    /// [`crate::InGrassEngine::preconditioner`] build).
    pub(crate) fn order_is_fresh(&self, growth: f64) -> bool {
        (self.built_nnz as f64) <= (self.order_base_nnz as f64) * growth.max(1.0)
    }

    /// Nodes of the sparsifier this factor was built for (full dimension,
    /// including the grounded node).
    pub(crate) fn num_nodes(&self) -> usize {
        self.n
    }

    fn from_factor(
        n: usize,
        ground: usize,
        epoch: u64,
        chol: SparseCholesky,
        order_base_nnz: Option<usize>,
    ) -> Self {
        let gperm = chol
            .ordering()
            .iter()
            .map(|&g| {
                let g = g as usize;
                (if g >= ground { g + 1 } else { g }) as u32
            })
            .collect();
        let built_nnz = chol.nnz();
        SparsifierPrecond {
            n,
            ground,
            epoch,
            built_nnz,
            order_base_nnz: order_base_nnz.unwrap_or(built_nnz),
            chol,
            gperm,
        }
    }

    /// Patches the factor in place with a batch of sparsifier edge-weight
    /// deltas `(u, v, Δw)` in original node indices: each delta is one
    /// rank-1 update (`Δw > 0`) or downdate (`Δw < 0`) of the grounded
    /// Laplacian along `√|Δw|·(e_u − e_v)`.
    ///
    /// `max_nnz` bounds the factor's stored entries (fill budget). On any
    /// error the factor must be considered unusable (a downdate can fail
    /// midway through the batch) and the caller should refactorize — which
    /// is also the recovery for [`LinalgError::FillBudget`].
    ///
    /// Updates run before downdates: every intermediate matrix then
    /// dominates either the old or the new Laplacian in the PSD order, so
    /// a batch whose *net* effect keeps the sparsifier connected (the
    /// engine's invariant) can never lose positive definiteness midway —
    /// e.g. deleting a bridge in the same batch that inserts its
    /// replacement path.
    pub(crate) fn apply_edge_deltas(
        &mut self,
        deltas: &[(u32, u32, f64)],
        max_nnz: usize,
    ) -> std::result::Result<(), LinalgError> {
        if self.n <= 1 {
            return Ok(());
        }
        let ground = self.ground;
        let shift = |x: usize| if x > ground { x - 1 } else { x };
        let mut x: Vec<(usize, f64)> = Vec::with_capacity(2);
        let ordered = deltas
            .iter()
            .filter(|&&(_, _, dw)| dw > 0.0)
            .chain(deltas.iter().filter(|&&(_, _, dw)| dw < 0.0));
        for &(u, v, dw) in ordered {
            if dw == 0.0 || u == v {
                continue;
            }
            let (u, v) = (u as usize, v as usize);
            let root = dw.abs().sqrt();
            x.clear();
            if u != ground {
                x.push((shift(u), root));
            }
            if v != ground {
                x.push((shift(v), -root));
            }
            if dw > 0.0 {
                self.chol.cholupdate(&x, Some(max_nnz))?;
            } else {
                self.chol.choldowndate(&x, Some(max_nnz))?;
            }
        }
        Ok(())
    }

    /// Stored factor entries at the last (re)build — the base the fill
    /// budget for incremental updates is computed from.
    pub(crate) fn built_nnz(&self) -> usize {
        self.built_nnz
    }

    /// Exports the factor's exact state for persistence.
    ///
    /// `built_nnz` / `order_base_nnz` travel explicitly rather than being
    /// recomputed at restore: a patched factor's live nnz differs from its
    /// nnz at the last rebuild, and recomputing either would shift the
    /// fill-budget and ordering-staleness decisions away from those the
    /// original engine would have made.
    pub(crate) fn export_state(&self) -> crate::state::PrecondState {
        crate::state::PrecondState {
            n: self.n,
            ground: self.ground,
            epoch: self.epoch,
            built_nnz: self.built_nnz,
            order_base_nnz: self.order_base_nnz,
            chol: self.chol.to_state(),
        }
    }

    /// Restores a factor from persisted state, revalidating the invariants
    /// `apply` relies on (factor dimension matches the grounded sparsifier,
    /// ground node in range) on top of the Cholesky-level checks.
    pub(crate) fn from_state(state: crate::state::PrecondState) -> Result<Self> {
        let chol = SparseCholesky::from_state(state.chol).map_err(|e| {
            InGrassError::BadSparsifier(format!("persisted factor is invalid: {e}"))
        })?;
        if state.n > 0 && (state.ground >= state.n || chol.dim() + 1 != state.n) {
            return Err(InGrassError::BadSparsifier(format!(
                "persisted factor dimension {} does not ground {} nodes at node {}",
                chol.dim(),
                state.n,
                state.ground
            )));
        }
        let ground = state.ground;
        let gperm = chol
            .ordering()
            .iter()
            .map(|&g| {
                let g = g as usize;
                (if g >= ground { g + 1 } else { g }) as u32
            })
            .collect();
        Ok(SparsifierPrecond {
            n: state.n,
            ground,
            epoch: state.epoch,
            built_nnz: state.built_nnz,
            order_base_nnz: state.order_base_nnz,
            chol,
            gperm,
        })
    }

    /// The engine epoch (re-setup count) the factor was built at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Stored entries of the Cholesky factor (fill measure).
    pub fn factor_nnz(&self) -> usize {
        self.chol.nnz()
    }

    /// Estimated numeric-refactorization work of the factor's pattern
    /// ([`ingrass_linalg::SparseCholesky::flops_estimate`]).
    pub fn factor_flops(&self) -> f64 {
        self.chol.flops_estimate()
    }

    /// The node whose row/column was grounded out.
    pub fn ground_node(&self) -> usize {
        self.ground
    }
}

impl Preconditioner for SparsifierPrecond {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        debug_assert_eq!(r.len(), self.n);
        debug_assert_eq!(z.len(), self.n);
        if self.n <= 1 {
            z.fill(0.0);
            return;
        }
        // Gather the grounded right-hand side directly into the permuted
        // solve basis, solve in place, scatter back: one scratch vector
        // per apply on a path PCG hits every iteration.
        let mut y: Vec<f64> = self.gperm.iter().map(|&g| r[g as usize]).collect();
        self.chol.solve_permuted_in_place(&mut y);
        z[self.ground] = 0.0;
        for (&g, &yk) in self.gperm.iter().zip(&y) {
            z[g as usize] = yk;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{InGrassEngine, SetupConfig};
    use ingrass_graph::Graph;
    use ingrass_linalg::{pcg, CgOptions, IdentityPrecond};

    fn ring_with_chords() -> Graph {
        let n = 24;
        let mut edges: Vec<(usize, usize, f64)> = (0..n)
            .map(|i| (i, (i + 1) % n, 1.0 + (i % 3) as f64))
            .collect();
        for i in 0..n / 2 {
            edges.push((i, i + n / 2, 0.5));
        }
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn preconditioner_solves_its_own_laplacian_in_one_iteration() {
        let h = ring_with_chords();
        let engine = InGrassEngine::setup(&h, &SetupConfig::default()).unwrap();
        let pre = engine.preconditioner().unwrap();
        assert_eq!(pre.epoch(), 0);
        let l = h.laplacian();
        let n = h.num_nodes();
        let mut b = vec![0.0; n];
        b[2] = 1.0;
        b[17] = -1.0;
        let ones = vec![1.0; n];
        let mut x = vec![0.0; n];
        let res = pcg(&l, &b, &mut x, &pre, Some(&ones), &CgOptions::default());
        assert!(res.converged);
        assert!(
            res.iterations <= 2,
            "exact preconditioner took {} iters",
            res.iterations
        );
    }

    #[test]
    fn preconditioner_beats_identity_on_a_denser_graph() {
        let h = ring_with_chords();
        let engine = InGrassEngine::setup(&h, &SetupConfig::default()).unwrap();
        let pre = engine.preconditioner().unwrap();
        // A "denser original": the sparsifier plus extra chords.
        let mut edges: Vec<(usize, usize, f64)> = h
            .edges()
            .iter()
            .map(|e| (e.u.index(), e.v.index(), e.weight))
            .collect();
        let n = h.num_nodes();
        for i in 0..n {
            edges.push((i, (i + 5) % n, 0.25));
        }
        let g = Graph::from_edges(n, &edges).unwrap();
        let l = g.laplacian();
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        b[n - 1] = -1.0;
        let ones = vec![1.0; n];
        let opts = CgOptions::default().with_rel_tol(1e-8);

        let mut x1 = vec![0.0; n];
        let plain = pcg(
            &l,
            &b,
            &mut x1,
            &IdentityPrecond::new(n),
            Some(&ones),
            &opts,
        );
        let mut x2 = vec![0.0; n];
        let pred = pcg(&l, &b, &mut x2, &pre, Some(&ones), &opts);
        assert!(plain.converged && pred.converged);
        assert!(
            pred.iterations < plain.iterations,
            "preconditioned {} vs plain {}",
            pred.iterations,
            plain.iterations
        );
    }
}
