//! Elimination orderings derived from the LRD cluster hierarchy.
//!
//! The LRD decomposition is a low-(resistance-)diameter decomposition, and
//! — following the separator-tree view of Liu–Sachdeva–Yu's "Short Cycles
//! via Low-Diameter Decompositions" — its cluster tree carries dissection
//! information: the vertices whose sparsifier edges cross cluster
//! boundaries at level `ℓ` are exactly the separator of the level-`ℓ`
//! region. At the sparsifier sizes this engine factors, however, an exact
//! greedy minimum-degree elimination is already near-optimal on the
//! near-planar bulk of the graph, and imposing the cluster tree as a hard
//! elimination constraint (interiors strictly before separators) *adds*
//! fill — LRD leaves are tiny and their two-sided separators fat. What the
//! hierarchy knows that minimum degree does not is *which* vertices churn
//! has turned into long-chord endpoints: those carry a coarse separator
//! level, and deferring them when degree is indifferent measurably cuts
//! fill. So the hierarchy is applied as a soft tie-break inside minimum
//! degree, and the cheaper of {plain, tie-broken} elimination is kept —
//! each quotient-graph run reports its exact `nnz(L)` as a byproduct, so
//! the choice costs no extra factorisation.

use crate::lrd::LrdHierarchy;
use ingrass_graph::NodeId;
use ingrass_linalg::{min_degree_order_with_hints, CsrMatrix};

/// Fill-reducing elimination order guided by the LRD hierarchy.
///
/// For every vertex, its *separator level* is the coarsest level at which
/// one of its incident sparsifier edges still crosses a cluster boundary
/// (the highest level whose separator it belongs to; vertices interior to
/// a leaf cluster get level 1). The separator level is handed to
/// [`ingrass_linalg::min_degree_order_with_hints`] as a soft tie-break:
/// among pivots of equal current quotient-graph degree, vertices deep
/// inside fine clusters are eliminated before endpoints of coarse
/// cross-cluster chords, postponing the dense blocks those chords induce.
/// Two candidate orders are raced — plain minimum degree and the
/// tie-broken variant — and the one with the smaller exact factor size
/// (`nnz(L)`, counted during elimination) wins, so the result is never
/// worse than [`ingrass_linalg::min_degree_order`] on fill and is strictly
/// better once churn has laced the sparsifier with chords. Deterministic
/// throughout (ties on node index).
///
/// `edges` supplies the sparsifier's edge endpoints (orientation and
/// multiplicity are irrelevant). `ground` removes one vertex from the
/// ordering and shifts larger indices down by one, matching the grounded
/// Laplacian the sparsifier preconditioner factors.
///
/// Returns `perm` with `perm[k]` = the (grounded) original index of the
/// k-th pivot — the same new-to-old convention as
/// [`ingrass_linalg::min_degree_order`].
pub fn lrd_nested_dissection_order(
    hierarchy: &LrdHierarchy,
    edges: impl Iterator<Item = (usize, usize)>,
    ground: Option<usize>,
) -> Vec<usize> {
    let n = hierarchy.num_nodes();
    let num_levels = hierarchy.num_levels();
    let edges: Vec<(usize, usize)> = edges.filter(|&(u, v)| u != v && u < n && v < n).collect();
    // Separator level per vertex. An edge whose endpoints first share a
    // cluster at level ℓ connects two distinct level-(ℓ−1) clusters inside
    // that region, so both endpoints belong to the separator of the
    // level-ℓ region; a vertex keeps the coarsest such level over its
    // incident edges. Endpoints of an edge whose clusters never merge (the
    // budget-capped hierarchy kept several top-level clusters) get
    // `num_levels`, deferring them hardest.
    let mut sep_level = vec![1u32; n];
    for &(u, v) in &edges {
        let merge = hierarchy
            .first_common_level(NodeId::new(u), NodeId::new(v))
            .unwrap_or(num_levels);
        let sep = merge.max(1) as u32;
        sep_level[u] = sep_level[u].max(sep);
        sep_level[v] = sep_level[v].max(sep);
    }

    // Grounded sparsity pattern (values are irrelevant to the ordering).
    let shift = |v: usize| match ground {
        Some(g) if v > g => v - 1,
        _ => v,
    };
    let m = n - usize::from(ground.is_some() && ground.unwrap() < n);
    let mut tiebreak = vec![0u32; m];
    for v in 0..n {
        if Some(v) != ground {
            tiebreak[shift(v)] = sep_level[v];
        }
    }
    let mut trip: Vec<(usize, usize, f64)> = Vec::with_capacity(2 * edges.len() + m);
    for i in 0..m {
        trip.push((i, i, 1.0));
    }
    for &(u, v) in &edges {
        if Some(u) == ground || Some(v) == ground {
            continue;
        }
        trip.push((shift(u), shift(v), 1.0));
        trip.push((shift(v), shift(u), 1.0));
    }
    let pattern = CsrMatrix::from_triplets(m, m, &trip);

    let (plain, plain_fill) = min_degree_order_with_hints(&pattern, None, None);
    let (guided, guided_fill) = min_degree_order_with_hints(&pattern, None, Some(&tiebreak));
    if guided_fill <= plain_fill {
        guided
    } else {
        plain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SetupConfig;
    use crate::engine::InGrassEngine;
    use ingrass_graph::Graph;

    fn grid_graph(side: usize) -> Graph {
        let mut edges = Vec::new();
        let idx = |r: usize, c: usize| r * side + c;
        for r in 0..side {
            for c in 0..side {
                if c + 1 < side {
                    edges.push((idx(r, c), idx(r, c + 1), 1.0));
                }
                if r + 1 < side {
                    edges.push((idx(r, c), idx(r + 1, c), 1.0));
                }
            }
        }
        Graph::from_edges(side * side, &edges).unwrap()
    }

    #[test]
    fn nested_dissection_order_is_a_permutation() {
        let g = grid_graph(8);
        let engine = InGrassEngine::setup(&g, &SetupConfig::default()).unwrap();
        let h = engine.sparsifier();
        let n = g.num_nodes();

        let full = lrd_nested_dissection_order(
            engine.hierarchy(),
            h.edges_iter().map(|(_, e)| (e.u.index(), e.v.index())),
            None,
        );
        let mut seen = vec![false; n];
        for &v in &full {
            assert!(v < n && !seen[v], "duplicate or out-of-range index {v}");
            seen[v] = true;
        }
        assert!(seen.iter().all(|&b| b));

        // Grounding drops one vertex and compacts the index space.
        let grounded = lrd_nested_dissection_order(
            engine.hierarchy(),
            h.edges_iter().map(|(_, e)| (e.u.index(), e.v.index())),
            Some(0),
        );
        let mut seen = vec![false; n - 1];
        for &v in &grounded {
            assert!(v < n - 1 && !seen[v]);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
