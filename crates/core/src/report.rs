//! Setup and update reports.

use std::time::{Duration, Instant};

/// Wall-clock stopwatch with per-phase laps.
///
/// One code path for every timing the workspace records: the engine's
/// [`SetupReport`]/[`UpdateReport`] phases and the `ingrass-bench` perf
/// harness's scenario breakdowns all read from this, so their numbers are
/// directly comparable.
///
/// ```
/// use ingrass::PhaseTimer;
/// let mut timer = PhaseTimer::start();
/// let phase1 = timer.lap(); // time since start
/// let phase2 = timer.lap(); // time since the previous lap
/// assert!(timer.total() >= phase1 + phase2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PhaseTimer {
    start: Instant,
    last: Instant,
}

impl PhaseTimer {
    /// Starts the stopwatch.
    pub fn start() -> Self {
        let now = Instant::now();
        PhaseTimer {
            start: now,
            last: now,
        }
    }

    /// Ends the current phase: returns the time since the previous `lap`
    /// (or since `start`) and begins the next phase.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let phase = now.duration_since(self.last);
        self.last = now;
        phase
    }

    /// Total time since `start`, without ending the current phase.
    pub fn total(&self) -> Duration {
        self.start.elapsed()
    }
}

/// What happened to one update operation during the update phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeOutcome {
    /// Spectrally critical and unique: added to the sparsifier.
    Included,
    /// A sparsifier edge already connects the two clusters at the filtering
    /// level: its weight absorbed the new edge.
    Merged,
    /// Both endpoints share a cluster at the filtering level: the weight was
    /// distributed proportionally over the cluster's internal edges.
    Redistributed,
    /// The edge was removed from the sparsifier.
    Deleted,
    /// The deletion hit a bridge of the sparsifier; the edge was replaced by
    /// a re-link edge so the sparsifier stays connected.
    Relinked,
    /// The edge's weight was overwritten in place.
    Reweighted,
    /// A delete/reweight of an edge the sparsifier never carried (its weight
    /// was filtered or merged away earlier): no physical change.
    Vacuous,
}

/// Statistics of one [`crate::InGrassEngine::setup`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct SetupReport {
    /// Nodes in the sparsifier.
    pub nodes: usize,
    /// Edges in the initial sparsifier.
    pub edges: usize,
    /// LRD levels built (= node embedding dimension).
    pub levels: usize,
    /// Time spent estimating edge resistances.
    pub resistance_time: Duration,
    /// Time spent on the LRD decomposition.
    pub lrd_time: Duration,
    /// Time spent building the cluster-connectivity index.
    pub connectivity_time: Duration,
    /// Total setup wall time.
    pub total_time: Duration,
}

/// Statistics of one [`crate::InGrassEngine::apply_batch`] (or
/// [`crate::InGrassEngine::insert_batch`]) call.
#[derive(Debug, Clone)]
pub struct UpdateReport {
    /// Operations in the batch.
    pub batch_size: usize,
    /// Edges added to the sparsifier.
    pub included: usize,
    /// Edges merged onto existing representative edges.
    pub merged: usize,
    /// Edges redistributed inside clusters.
    pub redistributed: usize,
    /// Edges removed from the sparsifier.
    pub deleted: usize,
    /// Bridge deletions converted into re-link edges (counted separately
    /// from `deleted`).
    pub relinked: usize,
    /// Edge weights overwritten in place.
    pub reweighted: usize,
    /// Deletes/reweights of edges the sparsifier never carried.
    pub vacuous: usize,
    /// Filtering level used.
    pub filtering_level: usize,
    /// Largest estimated distortion in the batch.
    pub max_distortion: f64,
    /// Whether this batch's drift crossed the policy and triggered an
    /// automatic re-setup (and why).
    pub resetup: Option<crate::ResetupReason>,
    /// Deleted-weight fraction of the drift tracker after the batch (0 right
    /// after a re-setup).
    pub drift_deleted_weight_fraction: f64,
    /// Distortion fraction of the drift tracker after the batch (0 right
    /// after a re-setup).
    pub drift_distortion_fraction: f64,
    /// Batch wall time (includes the re-setup, when one triggered).
    pub elapsed: Duration,
}

impl UpdateReport {
    /// Operations processed (must equal `batch_size`).
    pub fn total_processed(&self) -> usize {
        self.included
            + self.merged
            + self.redistributed
            + self.deleted
            + self.relinked
            + self.reweighted
            + self.vacuous
    }

    /// Fraction of the batch physically added to the sparsifier.
    pub fn inclusion_rate(&self) -> f64 {
        if self.batch_size == 0 {
            0.0
        } else {
            self.included as f64 / self.batch_size as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_timer_laps_partition_total() {
        let mut t = PhaseTimer::start();
        std::thread::sleep(Duration::from_millis(2));
        let a = t.lap();
        std::thread::sleep(Duration::from_millis(2));
        let b = t.lap();
        assert!(a >= Duration::from_millis(1));
        assert!(b >= Duration::from_millis(1));
        assert!(t.total() >= a + b);
    }

    fn empty_report() -> UpdateReport {
        UpdateReport {
            batch_size: 0,
            included: 0,
            merged: 0,
            redistributed: 0,
            deleted: 0,
            relinked: 0,
            reweighted: 0,
            vacuous: 0,
            filtering_level: 0,
            max_distortion: 0.0,
            resetup: None,
            drift_deleted_weight_fraction: 0.0,
            drift_distortion_fraction: 0.0,
            elapsed: Duration::ZERO,
        }
    }

    #[test]
    fn update_report_accounting() {
        let r = UpdateReport {
            batch_size: 14,
            included: 4,
            merged: 5,
            redistributed: 1,
            deleted: 2,
            relinked: 1,
            reweighted: 1,
            filtering_level: 3,
            max_distortion: 2.5,
            elapsed: Duration::from_millis(1),
            ..empty_report()
        };
        assert_eq!(r.total_processed(), 14);
        assert!((r.inclusion_rate() - 4.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_rate_is_zero() {
        let r = empty_report();
        assert_eq!(r.inclusion_rate(), 0.0);
    }
}
