//! Deterministic shard routing derived from the LRD hierarchy.
//!
//! The partition unit is an LRD cluster, never a single node: the
//! coarsest level with at least `S` clusters whose largest cluster fits
//! within the mean shard size is chosen (an oversized cluster would cap
//! achievable balance; when no level meets the cap the finest level with
//! `S` clusters is used), its `S` largest
//! clusters seed the shards, and the remaining clusters attach greedily
//! (smallest shard first, largest adjacent cluster first) along the
//! cluster-quotient adjacency of the sparsifier. Because LRD clusters
//! are internally connected and growth only follows quotient edges,
//! every shard's induced subgraph is connected — the invariant each
//! per-shard `InGrassEngine` requires at setup.
//!
//! The table is a pure function of `(hierarchy, graph edge list, S)`:
//! rebuilt on every drift re-setup, identical at any thread width.

use crate::lrd::LrdHierarchy;
use ingrass_graph::Graph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The node → shard routing table of a [`crate::ShardedEngine`], plus the
/// global ↔ shard-local index maps the coordinator splits and stitches
/// with.
#[derive(Debug, Clone)]
pub struct ShardRouting {
    shards: usize,
    level: usize,
    shard_of: Vec<u32>,
    local_of: Vec<u32>,
    global_of: Vec<Vec<u32>>,
}

impl ShardRouting {
    /// Builds the routing table for `shards` shards from the hierarchy's
    /// coarsest level with at least that many clusters (clamped to the
    /// node count, so every shard is non-empty).
    pub(crate) fn build(hierarchy: &LrdHierarchy, g: &Graph, shards: usize) -> ShardRouting {
        let n = hierarchy.num_nodes();
        let s = shards.clamp(1, n.max(1));
        if s <= 1 {
            return Self::from_shard_of(vec![0; n], 1, 0);
        }

        // The coarsest level with ≥ S clusters *whose largest cluster fits
        // within the mean shard size*: a cluster is never split, so one
        // oversized cluster caps achievable balance no matter how the rest
        // attach (on meshes the coarsest qualifying level often holds one
        // dominant cluster — near-total imbalance). Levels nest, so when
        // no level meets the cap the finest qualifying level is the best
        // available and the scan lands there.
        let mean_cap = n.div_ceil(s) as u64;
        let mut level = 0;
        for l in (0..hierarchy.num_levels()).rev() {
            let lvl = hierarchy.level(l);
            if lvl.num_clusters < s {
                continue;
            }
            let mut cs = vec![0u64; lvl.num_clusters];
            for &c in &lvl.cluster_of {
                cs[c as usize] += 1;
            }
            level = l;
            if cs.iter().copied().max().unwrap_or(0) <= mean_cap {
                break;
            }
        }
        let lvl = hierarchy.level(level);
        let k = lvl.num_clusters;

        // Cluster sizes and quotient adjacency (deduplicated, sorted).
        let mut csize = vec![0u64; k];
        for &c in &lvl.cluster_of {
            csize[c as usize] += 1;
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); k];
        for e in g.edges() {
            let (a, b) = (lvl.cluster_of[e.u.index()], lvl.cluster_of[e.v.index()]);
            if a != b {
                adj[a as usize].push(b);
                adj[b as usize].push(a);
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }

        // Seeds: the S largest clusters (ties by smaller id).
        let mut order: Vec<u32> = (0..k as u32).collect();
        order.sort_by(|&a, &b| csize[b as usize].cmp(&csize[a as usize]).then(a.cmp(&b)));
        let mut shard_of_cluster = vec![u32::MAX; k];
        let mut shard_nodes = vec![0u64; s];
        // Per-shard frontier of adjacent unassigned clusters: max-heap on
        // (size, smallest id) with lazy deletion of entries claimed by
        // another shard in the meantime.
        let mut frontier: Vec<BinaryHeap<(u64, Reverse<u32>)>> =
            (0..s).map(|_| BinaryHeap::new()).collect();
        let mut assigned = 0usize;
        let assign = |c: u32,
                      sh: usize,
                      shard_of_cluster: &mut Vec<u32>,
                      shard_nodes: &mut Vec<u64>,
                      frontier: &mut Vec<BinaryHeap<(u64, Reverse<u32>)>>,
                      assigned: &mut usize| {
            shard_of_cluster[c as usize] = sh as u32;
            shard_nodes[sh] += csize[c as usize];
            *assigned += 1;
            for &nb in &adj[c as usize] {
                if shard_of_cluster[nb as usize] == u32::MAX {
                    frontier[sh].push((csize[nb as usize], Reverse(nb)));
                }
            }
        };
        for (sh, &c) in order[..s].iter().enumerate() {
            assign(
                c,
                sh,
                &mut shard_of_cluster,
                &mut shard_nodes,
                &mut frontier,
                &mut assigned,
            );
        }

        // Balanced greedy growth: the smallest shard (ties by index)
        // claims the largest unassigned cluster on its frontier.
        while assigned < k {
            let mut shard_order: Vec<usize> = (0..s).collect();
            shard_order.sort_by_key(|&i| (shard_nodes[i], i));
            let mut grew = false;
            for &sh in &shard_order {
                let mut claimed = None;
                while let Some(&(_, Reverse(c))) = frontier[sh].peek() {
                    if shard_of_cluster[c as usize] == u32::MAX {
                        claimed = Some(c);
                        break;
                    }
                    frontier[sh].pop(); // stale: claimed elsewhere
                }
                if let Some(c) = claimed {
                    frontier[sh].pop();
                    assign(
                        c,
                        sh,
                        &mut shard_of_cluster,
                        &mut shard_nodes,
                        &mut frontier,
                        &mut assigned,
                    );
                    grew = true;
                    break;
                }
            }
            if !grew {
                // No frontier can grow — only possible for clusters in a
                // different connected component, which engine setup
                // rejects; stay total anyway by attaching leftovers to the
                // smallest shard.
                for c in 0..k as u32 {
                    if shard_of_cluster[c as usize] == u32::MAX {
                        let sh = (0..s).min_by_key(|&i| (shard_nodes[i], i)).unwrap();
                        assign(
                            c,
                            sh,
                            &mut shard_of_cluster,
                            &mut shard_nodes,
                            &mut frontier,
                            &mut assigned,
                        );
                    }
                }
            }
        }

        let shard_of: Vec<u32> = lvl
            .cluster_of
            .iter()
            .map(|&c| shard_of_cluster[c as usize])
            .collect();
        Self::from_shard_of(shard_of, s, level)
    }

    /// Rebuilds the index maps from a node → shard assignment (the
    /// persisted form). Local ids are assigned in ascending global order,
    /// exactly as [`ShardRouting::build`] does, so a restored table is
    /// bit-identical to its exporter.
    pub(crate) fn from_shard_of(shard_of: Vec<u32>, shards: usize, level: usize) -> ShardRouting {
        let n = shard_of.len();
        let mut global_of: Vec<Vec<u32>> = vec![Vec::new(); shards];
        let mut local_of = vec![0u32; n];
        for (u, &sh) in shard_of.iter().enumerate() {
            let sh = sh as usize;
            local_of[u] = global_of[sh].len() as u32;
            global_of[sh].push(u as u32);
        }
        ShardRouting {
            shards,
            level,
            shard_of,
            local_of,
            global_of,
        }
    }

    /// Number of shards (≥ 1; never more than the node count).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The hierarchy level whose clusters seeded the partition.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Nodes in the routed graph.
    pub fn num_nodes(&self) -> usize {
        self.shard_of.len()
    }

    /// The shard owning global node `u`.
    pub fn shard_of(&self, u: usize) -> usize {
        self.shard_of[u] as usize
    }

    /// The full node → shard assignment.
    pub fn shard_of_slice(&self) -> &[u32] {
        &self.shard_of
    }

    /// The shard-local index of global node `u` (within its owning shard).
    pub fn local_of(&self, u: usize) -> usize {
        self.local_of[u] as usize
    }

    /// Global node ids of shard `s`, in ascending order (the shard-local
    /// index space).
    pub fn global_of(&self, s: usize) -> &[u32] {
        &self.global_of[s]
    }

    /// Node count per shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.global_of.iter().map(|g| g.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InGrassEngine, SetupConfig};
    use ingrass_graph::{is_connected, Graph};

    fn grid(side: usize) -> Graph {
        let idx = |r: usize, c: usize| r * side + c;
        let mut edges = Vec::new();
        for r in 0..side {
            for c in 0..side {
                if c + 1 < side {
                    edges.push((idx(r, c), idx(r, c + 1), 1.0));
                }
                if r + 1 < side {
                    edges.push((idx(r, c), idx(r + 1, c), 1.0));
                }
            }
        }
        Graph::from_edges(side * side, &edges).unwrap()
    }

    fn routing_for(g: &Graph, shards: usize) -> ShardRouting {
        let cfg = SetupConfig::default();
        let res = InGrassEngine::estimate_edge_resistances(g, &cfg).unwrap();
        let hier = crate::lrd::LrdHierarchy::build(
            g,
            &res,
            cfg.initial_diameter,
            cfg.diameter_growth,
            cfg.max_levels,
        )
        .unwrap();
        ShardRouting::build(&hier, g, shards)
    }

    #[test]
    fn every_shard_is_nonempty_and_connected() {
        let g = grid(12);
        for s in [1, 2, 4, 7] {
            let routing = routing_for(&g, s);
            assert_eq!(routing.shards(), s);
            let sizes = routing.shard_sizes();
            assert_eq!(sizes.iter().sum::<usize>(), g.num_nodes());
            assert!(sizes.iter().all(|&sz| sz > 0), "{sizes:?}");
            for shard in 0..s {
                let nodes = routing.global_of(shard);
                let mut edges = Vec::new();
                for e in g.edges() {
                    let (u, v) = (e.u.index(), e.v.index());
                    if routing.shard_of(u) == shard && routing.shard_of(v) == shard {
                        edges.push((routing.local_of(u), routing.local_of(v), e.weight));
                    }
                }
                let sub = Graph::from_edges(nodes.len(), &edges).unwrap();
                assert!(
                    is_connected(&sub),
                    "shard {shard}/{s} induced subgraph disconnected"
                );
            }
        }
    }

    #[test]
    fn local_ids_are_ascending_global_order() {
        let g = grid(8);
        let routing = routing_for(&g, 3);
        for s in 0..routing.shards() {
            let nodes = routing.global_of(s);
            assert!(nodes.windows(2).all(|w| w[0] < w[1]));
            for (local, &global) in nodes.iter().enumerate() {
                assert_eq!(routing.local_of(global as usize), local);
                assert_eq!(routing.shard_of(global as usize), s);
            }
        }
    }

    #[test]
    fn routing_round_trips_through_shard_of() {
        let g = grid(10);
        let a = routing_for(&g, 4);
        let b = ShardRouting::from_shard_of(a.shard_of_slice().to_vec(), a.shards(), a.level());
        assert_eq!(a.shard_of_slice(), b.shard_of_slice());
        for s in 0..a.shards() {
            assert_eq!(a.global_of(s), b.global_of(s));
        }
    }

    #[test]
    fn oversized_shard_count_clamps_to_nodes() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let routing = routing_for(&g, 16);
        assert_eq!(routing.shards(), 3);
        assert_eq!(routing.shard_sizes(), vec![1, 1, 1]);
    }
}
