//! Stitching per-shard factors into one sparsifier preconditioner.
//!
//! The grounded sparsifier Laplacian `L` (ground node 0 removed),
//! reordered by the shard partition, is block-arrowhead: per-shard
//! interior blocks `A_s`, a boundary block `L_BB` over the cross-shard
//! edge endpoints `B`, and couplings `E_s = L[I_s, B]`. The classic
//! block factorisation then solves `L z = r` *exactly* with
//!
//! 1. per-shard interior solves `y_s = A_s⁻¹ r_s` (sparse Cholesky,
//!    computed per shard and in parallel),
//! 2. one dense solve with the boundary Schur complement
//!    `S = L_BB − Σ_s E_sᵀ A_s⁻¹ E_s` (small: `|B|` is the number of
//!    cross-shard endpoints, which the LRD partition keeps low),
//! 3. a per-shard correction pass `x_s = A_s⁻¹ (r_s − E_s x_B)`.
//!
//! Because the solve is exact, a [`StitchedPrecond`] preconditions PCG on
//! the original Laplacian exactly as well as the single-engine
//! `SparsifierPrecond` of the same sparsifier — stitched-solve iteration
//! counts match, which the parity suite pins.
//!
//! Every loop below runs in a fixed index order and parallel maps place
//! results by index, so the factor (and every solve through it) is
//! bit-identical at any thread width.

use crate::error::InGrassError;
use crate::Result;
use ingrass_graph::Graph;
use ingrass_linalg::{CsrMatrix, DenseMatrix, Preconditioner, SparseCholesky};

/// Node classes of the block partition.
const CLASS_GROUND: u8 = 0;
const CLASS_BOUNDARY: u8 = 1;
const CLASS_INTERIOR: u8 = 2;

/// The Schur-complement-stitched preconditioner over a sharded
/// sparsifier: per-shard interior Cholesky factors plus one dense factor
/// of the boundary Schur complement, applied as an exact block solve.
#[derive(Debug, Clone)]
pub struct StitchedPrecond {
    n: usize,
    epoch: u64,
    /// Global boundary nodes, ascending (their index is the boundary
    /// coordinate of the dense block).
    boundary: Vec<u32>,
    /// Global ids of each shard's interior nodes, ascending.
    interiors: Vec<Vec<u32>>,
    /// Interior factor per shard (`None` for an empty interior).
    chols: Vec<Option<SparseCholesky>>,
    /// Per shard: coupling entries `(interior slot, boundary slot, w)`
    /// for every sparsifier edge between that shard's interior and the
    /// boundary set.
    coupling: Vec<Vec<(u32, u32, f64)>>,
    /// Dense lower Cholesky factor of the boundary Schur complement
    /// (`None` when the boundary is empty).
    schur: Option<DenseMatrix>,
}

impl StitchedPrecond {
    /// Builds the stitched factor for `graph` under the given node →
    /// shard assignment.
    ///
    /// `threads` bounds the fan-out of per-shard factorisations and
    /// Schur column solves; the result is identical at any width.
    ///
    /// # Errors
    /// [`InGrassError::BadSparsifier`] if an interior block or the
    /// boundary Schur complement is not SPD — the assembled sparsifier
    /// is disconnected or numerically degenerate.
    pub(crate) fn build(
        graph: &Graph,
        shard_of: &[u32],
        shards: usize,
        epoch: u64,
        threads: usize,
    ) -> Result<StitchedPrecond> {
        let n = graph.num_nodes();
        assert_eq!(shard_of.len(), n, "shard assignment covers every node");
        let ground = 0usize;

        // Classify nodes: endpoints of cross-shard edges are boundary
        // (except ground, which is simply removed), everything else is
        // interior to its shard.
        let mut class = vec![CLASS_INTERIOR; n];
        if n > 0 {
            class[ground] = CLASS_GROUND;
        }
        for e in graph.edges() {
            let (u, v) = (e.u.index(), e.v.index());
            if shard_of[u] != shard_of[v] {
                if u != ground {
                    class[u] = CLASS_BOUNDARY;
                }
                if v != ground {
                    class[v] = CLASS_BOUNDARY;
                }
            }
        }
        let boundary: Vec<u32> = (0..n)
            .filter(|&u| class[u] == CLASS_BOUNDARY)
            .map(|u| u as u32)
            .collect();
        let nb = boundary.len();
        let mut slot = vec![0u32; n];
        for (i, &b) in boundary.iter().enumerate() {
            slot[b as usize] = i as u32;
        }
        let mut interiors: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for u in 0..n {
            if class[u] != CLASS_INTERIOR {
                continue;
            }
            let sh = shard_of[u] as usize;
            slot[u] = interiors[sh].len() as u32;
            interiors[sh].push(u as u32);
        }

        // One pass over the edges fills per-shard interior triplets, the
        // couplings, and the boundary block's off-diagonal; degrees
        // accumulate for every node so each block's diagonal is the full
        // grounded-Laplacian diagonal.
        let mut degree = vec![0.0f64; n];
        let mut trips: Vec<Vec<(usize, usize, f64)>> = vec![Vec::new(); shards];
        let mut coupling: Vec<Vec<(u32, u32, f64)>> = vec![Vec::new(); shards];
        let mut lbb = DenseMatrix::zeros(nb, nb);
        for e in graph.edges() {
            let (u, v, w) = (e.u.index(), e.v.index(), e.weight);
            degree[u] += w;
            degree[v] += w;
            match (class[u], class[v]) {
                (CLASS_INTERIOR, CLASS_INTERIOR) => {
                    let sh = shard_of[u] as usize;
                    debug_assert_eq!(sh, shard_of[v] as usize);
                    let (i, j) = (slot[u] as usize, slot[v] as usize);
                    trips[sh].push((i, j, -w));
                    trips[sh].push((j, i, -w));
                }
                (CLASS_INTERIOR, CLASS_BOUNDARY) => {
                    coupling[shard_of[u] as usize].push((slot[u], slot[v], w));
                }
                (CLASS_BOUNDARY, CLASS_INTERIOR) => {
                    coupling[shard_of[v] as usize].push((slot[v], slot[u], w));
                }
                (CLASS_BOUNDARY, CLASS_BOUNDARY) => {
                    let (i, j) = (slot[u] as usize, slot[v] as usize);
                    lbb.add(i, j, -w);
                    lbb.add(j, i, -w);
                }
                // Edges at the ground node only contribute degree.
                _ => {}
            }
        }
        for (sh, interior) in interiors.iter().enumerate() {
            for (i, &u) in interior.iter().enumerate() {
                trips[sh].push((i, i, degree[u as usize]));
            }
        }
        for (i, &b) in boundary.iter().enumerate() {
            lbb.add(i, i, degree[b as usize]);
        }

        // Per-shard interior factors, in parallel (placed by index).
        let chols: Vec<Result<Option<SparseCholesky>>> =
            ingrass_par::par_map_range_with(threads.max(1), shards, |sh| {
                let m = interiors[sh].len();
                if m == 0 {
                    return Ok(None);
                }
                let a = CsrMatrix::from_triplets(m, m, &trips[sh]);
                SparseCholesky::factor(&a).map(Some).map_err(|e| {
                    InGrassError::BadSparsifier(format!(
                        "shard {sh} interior block is not SPD: {e}"
                    ))
                })
            });
        let mut factors: Vec<Option<SparseCholesky>> = Vec::with_capacity(shards);
        for c in chols {
            factors.push(c?);
        }

        // Boundary Schur complement S = L_BB − Σ_s E_sᵀ A_s⁻¹ E_s. Each
        // shard's contribution needs one interior solve per boundary
        // column it couples to (fanned out over threads); accumulation
        // stays serial in a fixed order.
        let mut schur_mat = lbb;
        if nb > 0 {
            for sh in 0..shards {
                let Some(chol) = &factors[sh] else { continue };
                if coupling[sh].is_empty() {
                    continue;
                }
                let m = interiors[sh].len();
                let mut cols: Vec<u32> = coupling[sh].iter().map(|&(_, b, _)| b).collect();
                cols.sort_unstable();
                cols.dedup();
                let entries = &coupling[sh];
                let ys: Vec<Vec<f64>> = ingrass_par::par_map_with(threads.max(1), &cols, |&b| {
                    // Column b of E_s: entries −w at coupled rows.
                    let mut rhs = vec![0.0f64; m];
                    for &(i, bp, w) in entries {
                        if bp == b {
                            rhs[i as usize] -= w;
                        }
                    }
                    let mut y = vec![0.0f64; m];
                    chol.solve_into(&rhs, &mut y);
                    y
                });
                for (ci, &b) in cols.iter().enumerate() {
                    let y = &ys[ci];
                    for &(i, bp, w) in entries {
                        // −(E_sᵀ y)[bp] with E[i, bp] = −w ⇒ +w·y[i].
                        schur_mat.add(bp as usize, b as usize, w * y[i as usize]);
                    }
                }
            }
        }
        let schur = if nb > 0 {
            Some(schur_mat.cholesky().map_err(|e| {
                InGrassError::BadSparsifier(format!(
                    "boundary Schur complement ({nb} nodes) is not SPD: {e}"
                ))
            })?)
        } else {
            None
        };

        Ok(StitchedPrecond {
            n,
            epoch,
            boundary,
            interiors,
            chols: factors,
            coupling,
            schur,
        })
    }

    /// The coordinator epoch (global re-setup count) this factor was
    /// built at — the staleness key, mirroring `SparsifierPrecond::epoch`.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards stitched.
    pub fn shards(&self) -> usize {
        self.interiors.len()
    }

    /// Number of boundary nodes (the dense block's dimension).
    pub fn boundary_nodes(&self) -> usize {
        self.boundary.len()
    }

    /// The grounded node (always node 0, as for the mono preconditioner).
    pub fn ground_node(&self) -> usize {
        0
    }

    /// Stored factor entries: per-shard sparse factors plus the dense
    /// boundary factor's lower triangle.
    pub fn factor_nnz(&self) -> usize {
        let sparse: usize = self.chols.iter().flatten().map(|c| c.nnz()).sum();
        let nb = self.boundary.len();
        sparse + nb * (nb + 1) / 2
    }

    /// Estimated refactorisation work across all blocks.
    pub fn factor_flops(&self) -> f64 {
        let sparse: f64 = self
            .chols
            .iter()
            .flatten()
            .map(|c| c.flops_estimate())
            .sum();
        let nb = self.boundary.len() as f64;
        sparse + nb * nb * nb / 3.0
    }

    /// Solves with the cached dense lower factor: forward then backward
    /// substitution (`L Lᵀ x = b`).
    fn schur_solve(&self, b: &mut [f64]) {
        let Some(l) = &self.schur else { return };
        let nb = b.len();
        for i in 0..nb {
            let mut acc = b[i];
            for j in 0..i {
                acc -= l.get(i, j) * b[j];
            }
            b[i] = acc / l.get(i, i);
        }
        for i in (0..nb).rev() {
            let mut acc = b[i];
            for j in i + 1..nb {
                acc -= l.get(j, i) * b[j];
            }
            b[i] = acc / l.get(i, i);
        }
    }

    /// One interior solve `out = A_s⁻¹ rhs` for shard `sh` (no-op for an
    /// empty interior).
    fn interior_solve(&self, sh: usize, rhs: &[f64], out: &mut [f64]) {
        if let Some(chol) = &self.chols[sh] {
            chol.solve_into(rhs, out);
        }
    }
}

impl Preconditioner for StitchedPrecond {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        debug_assert_eq!(r.len(), self.n);
        debug_assert_eq!(z.len(), self.n);
        if self.n <= 1 {
            z.fill(0.0);
            return;
        }
        let shards = self.interiors.len();

        // 1. Per-shard interior pre-solves y_s = A_s⁻¹ r_s.
        let mut ys: Vec<Vec<f64>> = Vec::with_capacity(shards);
        for sh in 0..shards {
            let interior = &self.interiors[sh];
            let rhs: Vec<f64> = interior.iter().map(|&u| r[u as usize]).collect();
            let mut y = vec![0.0f64; interior.len()];
            self.interior_solve(sh, &rhs, &mut y);
            ys.push(y);
        }

        // 2. Boundary solve x_B = S⁻¹ (r_B − Σ E_sᵀ y_s).
        let mut xb: Vec<f64> = self.boundary.iter().map(|&b| r[b as usize]).collect();
        for sh in 0..shards {
            for &(i, b, w) in &self.coupling[sh] {
                // −E[i,b]·y[i] with E[i,b] = −w.
                xb[b as usize] += w * ys[sh][i as usize];
            }
        }
        self.schur_solve(&mut xb);

        // 3. Correction pass x_s = A_s⁻¹ (r_s − E_s x_B) and scatter.
        z[0] = 0.0;
        for (i, &b) in self.boundary.iter().enumerate() {
            z[b as usize] = xb[i];
        }
        for sh in 0..shards {
            let interior = &self.interiors[sh];
            if interior.is_empty() {
                continue;
            }
            let mut t: Vec<f64> = interior.iter().map(|&u| r[u as usize]).collect();
            for &(i, b, w) in &self.coupling[sh] {
                t[i as usize] += w * xb[b as usize];
            }
            let mut x = vec![0.0f64; interior.len()];
            self.interior_solve(sh, &t, &mut x);
            for (i, &u) in interior.iter().enumerate() {
                z[u as usize] = x[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingrass_linalg::{pcg, CgOptions};

    /// A two-block graph: two 4-cliques joined by two cross edges.
    fn two_blocks() -> (Graph, Vec<u32>) {
        let mut edges = Vec::new();
        for base in [0usize, 4] {
            for a in 0..4 {
                for b in (a + 1)..4 {
                    edges.push((base + a, base + b, 1.0 + (a + b) as f64 * 0.1));
                }
            }
        }
        edges.push((1, 5, 0.5));
        edges.push((3, 6, 0.25));
        let g = Graph::from_edges(8, &edges).unwrap();
        let shard_of = vec![0, 0, 0, 0, 1, 1, 1, 1];
        (g, shard_of)
    }

    #[test]
    fn stitched_solve_is_exact_for_its_own_laplacian() {
        let (g, shard_of) = two_blocks();
        let pre = StitchedPrecond::build(&g, &shard_of, 2, 0, 1).unwrap();
        assert_eq!(pre.shards(), 2);
        assert_eq!(pre.boundary_nodes(), 4); // nodes 1, 3, 5, 6
        let l = g.laplacian();
        let n = g.num_nodes();
        let mut b = vec![0.0; n];
        b[2] = 1.0;
        b[7] = -1.0;
        let ones = vec![1.0; n];
        let mut x = vec![0.0; n];
        let res = pcg(&l, &b, &mut x, &pre, Some(&ones), &CgOptions::default());
        assert!(res.converged);
        assert!(
            res.iterations <= 2,
            "exact block solve took {} iters",
            res.iterations
        );
    }

    #[test]
    fn matches_mono_preconditioner_application() {
        // The stitched apply must equal the exact grounded solve, i.e.
        // L·z = r on the ground-complement (up to the grounded node).
        let (g, shard_of) = two_blocks();
        let pre = StitchedPrecond::build(&g, &shard_of, 2, 0, 1).unwrap();
        let l = g.laplacian();
        let n = g.num_nodes();
        let mut r = vec![0.0; n];
        for (i, v) in r.iter_mut().enumerate() {
            *v = (i as f64 * 0.37).sin();
        }
        r[0] = 0.0; // grounded coordinate carries no information
        let mut z = vec![0.0; n];
        pre.apply(&r, &mut z);
        assert_eq!(z[0], 0.0);
        // Check L z = r on every non-ground coordinate.
        let mut lz = vec![0.0; n];
        l.matvec(&z, &mut lz);
        for i in 1..n {
            assert!(
                (lz[i] - r[i]).abs() < 1e-9,
                "residual at {i}: {} vs {}",
                lz[i],
                r[i]
            );
        }
    }

    #[test]
    fn thread_width_does_not_change_the_factor() {
        let (g, shard_of) = two_blocks();
        let p1 = StitchedPrecond::build(&g, &shard_of, 2, 0, 1).unwrap();
        let p4 = StitchedPrecond::build(&g, &shard_of, 2, 0, 4).unwrap();
        let n = g.num_nodes();
        let r: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0).recip()).collect();
        let (mut z1, mut z4) = (vec![0.0; n], vec![0.0; n]);
        p1.apply(&r, &mut z1);
        p4.apply(&r, &mut z4);
        assert_eq!(z1, z4, "stitched solve differs across build widths");
        assert_eq!(p1.factor_nnz(), p4.factor_nnz());
    }

    #[test]
    fn single_shard_has_no_boundary() {
        let (g, _) = two_blocks();
        let shard_of = vec![0u32; g.num_nodes()];
        let pre = StitchedPrecond::build(&g, &shard_of, 1, 0, 1).unwrap();
        assert_eq!(pre.boundary_nodes(), 0);
        let l = g.laplacian();
        let n = g.num_nodes();
        let mut b = vec![0.0; n];
        b[1] = 1.0;
        b[4] = -1.0;
        let ones = vec![1.0; n];
        let mut x = vec![0.0; n];
        let res = pcg(&l, &b, &mut x, &pre, Some(&ones), &CgOptions::default());
        assert!(res.converged && res.iterations <= 2);
    }
}
