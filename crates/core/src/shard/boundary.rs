//! The coordinator's cross-shard boundary graph.
//!
//! Edges whose endpoints live on different shards never enter a shard
//! engine; they live here, keyed by unordered global endpoint pair in a
//! `BTreeMap` so iteration order (and therefore everything derived from
//! it — assembled graphs, stitched factors, checksums) is deterministic.

use std::collections::{BTreeMap, BTreeSet};

/// The cross-shard edge set of a [`crate::ShardedEngine`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BoundaryGraph {
    edges: BTreeMap<(u32, u32), f64>,
}

fn key(u: usize, v: usize) -> (u32, u32) {
    let (u, v) = (u as u32, v as u32);
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

impl BoundaryGraph {
    /// An empty boundary graph.
    pub fn new() -> BoundaryGraph {
        BoundaryGraph::default()
    }

    /// Number of boundary edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the boundary is empty (single shard, or no cross edges).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Adds `w` to the edge `{u, v}`, creating it if absent (parallel
    /// logical edges coalesce, mirroring `Graph::from_edges`). Returns
    /// `true` if the pair was new.
    pub fn insert(&mut self, u: usize, v: usize, w: f64) -> bool {
        let mut created = false;
        self.edges
            .entry(key(u, v))
            .and_modify(|cur| *cur += w)
            .or_insert_with(|| {
                created = true;
                w
            });
        created
    }

    /// Removes the edge `{u, v}`, returning its weight if present.
    pub fn remove(&mut self, u: usize, v: usize) -> Option<f64> {
        self.edges.remove(&key(u, v))
    }

    /// Overwrites the weight of `{u, v}`; `false` (and no change) if the
    /// boundary does not carry the pair.
    pub fn set_weight(&mut self, u: usize, v: usize, w: f64) -> bool {
        match self.edges.get_mut(&key(u, v)) {
            Some(cur) => {
                *cur = w;
                true
            }
            None => false,
        }
    }

    /// Current weight of `{u, v}`, if carried.
    pub fn weight(&self, u: usize, v: usize) -> Option<f64> {
        self.edges.get(&key(u, v)).copied()
    }

    /// Iterates edges as `(u, v, w)` with `u < v`, ascending by pair.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        self.edges.iter().map(|(&(u, v), &w)| (u, v, w))
    }

    /// Sum of boundary edge weights.
    pub fn total_weight(&self) -> f64 {
        self.edges.values().sum()
    }

    /// Distinct endpoints of boundary edges.
    pub fn node_count(&self) -> usize {
        let mut nodes: BTreeSet<u32> = BTreeSet::new();
        for &(u, v) in self.edges.keys() {
            nodes.insert(u);
            nodes.insert(v);
        }
        nodes.len()
    }

    /// The edge list in iteration order (persistence export).
    pub fn to_edges(&self) -> Vec<(u32, u32, f64)> {
        self.iter().collect()
    }

    /// Rebuilds a boundary graph from an exported edge list (pairs
    /// re-normalised and coalesced, so any valid list round-trips).
    pub fn from_edges(edges: &[(u32, u32, f64)]) -> BoundaryGraph {
        let mut b = BoundaryGraph::new();
        for &(u, v, w) in edges {
            b.insert(u as usize, v as usize, w);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_coalesces_and_orientation_is_canonical() {
        let mut b = BoundaryGraph::new();
        assert!(b.insert(5, 2, 1.0));
        assert!(!b.insert(2, 5, 0.5));
        assert_eq!(b.len(), 1);
        assert_eq!(b.weight(5, 2), Some(1.5));
        assert_eq!(b.iter().next(), Some((2, 5, 1.5)));
        assert_eq!(b.node_count(), 2);
    }

    #[test]
    fn remove_and_set_weight_report_presence() {
        let mut b = BoundaryGraph::new();
        b.insert(0, 3, 2.0);
        assert!(!b.set_weight(1, 2, 9.0));
        assert!(b.set_weight(3, 0, 4.0));
        assert_eq!(b.total_weight(), 4.0);
        assert_eq!(b.remove(0, 3), Some(4.0));
        assert_eq!(b.remove(0, 3), None);
        assert!(b.is_empty());
    }

    #[test]
    fn export_round_trips() {
        let mut b = BoundaryGraph::new();
        b.insert(7, 1, 0.5);
        b.insert(4, 9, 2.5);
        let b2 = BoundaryGraph::from_edges(&b.to_edges());
        assert_eq!(b, b2);
    }
}
