//! The multilevel sparse cluster-connectivity structure (paper Section
//! III-B-3): for every LRD level, which sparsifier edge connects each
//! cluster pair, and which edges live inside each cluster.

use crate::lrd::LrdHierarchy;
use ingrass_graph::{DynGraph, EdgeId, NodeId};
use std::collections::HashMap;

/// Per-level cluster-pair → representative-edge index plus per-cluster
/// internal-edge registry.
///
/// This is the structure the update phase queries in `O(1)` per level:
///
/// * [`ClusterConnectivity::connecting_edge`] — is there already a
///   sparsifier edge between these two clusters? (→ **merge** outcome)
/// * [`ClusterConnectivity::intra_edges`] — the sparsifier edges inside a
///   cluster (→ **redistribute** outcome).
///
/// It is updated (`register_edge`) whenever the engine includes a new edge,
/// exactly as the paper prescribes ("the sparse data structure is promptly
/// updated upon the addition of a newly introduced edge"), and
/// (`unregister_edge`) whenever a churn deletion removes one.
///
/// Deletions make entries *stale*: a representative edge id may be dead in
/// `H`, and intra lists may carry dead ids. Readers therefore filter by
/// liveness ([`ClusterConnectivity::connecting_live_edge`]); intra lists are
/// compacted lazily once more than half of a list is dead, keeping deletion
/// amortized `O(levels)` even for the top-level list that holds every edge.
#[derive(Debug, Clone)]
pub struct ClusterConnectivity {
    /// One map per level: canonical cluster pair → representative edge.
    pair_maps: Vec<HashMap<(u32, u32), EdgeId>>,
    /// One map per level: cluster → edges fully inside it.
    intra_maps: Vec<HashMap<u32, Vec<EdgeId>>>,
    /// One map per level: cluster → dead entries in its intra list.
    intra_dead: Vec<HashMap<u32, u32>>,
}

impl ClusterConnectivity {
    /// Indexes every live edge of `h` against `hierarchy`.
    pub fn build(h: &DynGraph, hierarchy: &LrdHierarchy) -> Self {
        let levels = hierarchy.num_levels();
        let mut conn = ClusterConnectivity {
            pair_maps: vec![HashMap::new(); levels],
            intra_maps: vec![HashMap::new(); levels],
            intra_dead: vec![HashMap::new(); levels],
        };
        for (id, edge) in h.edges_iter() {
            conn.register_edge(hierarchy, h, id, edge.u, edge.v);
        }
        conn
    }

    /// Registers a (new) sparsifier edge at every level. A pair entry whose
    /// previous representative has died in `h` is repaired in place.
    pub fn register_edge(
        &mut self,
        hierarchy: &LrdHierarchy,
        h: &DynGraph,
        id: EdgeId,
        u: NodeId,
        v: NodeId,
    ) {
        for (level, lvl) in hierarchy.levels().iter().enumerate() {
            let (mut cu, mut cv) = (lvl.cluster_of[u.index()], lvl.cluster_of[v.index()]);
            if cu == cv {
                self.intra_maps[level].entry(cu).or_default().push(id);
            } else {
                if cu > cv {
                    std::mem::swap(&mut cu, &mut cv);
                }
                let entry = self.pair_maps[level].entry((cu, cv)).or_insert(id);
                if h.edge(*entry).is_none() {
                    *entry = id;
                }
            }
        }
    }

    /// Unregisters a deleted sparsifier edge at every level: pair entries
    /// pointing at it are dropped (a later include repairs the pair), and
    /// its intra lists are compacted lazily via the half-dead rule.
    pub fn unregister_edge(
        &mut self,
        hierarchy: &LrdHierarchy,
        h: &DynGraph,
        id: EdgeId,
        u: NodeId,
        v: NodeId,
    ) {
        for (level, lvl) in hierarchy.levels().iter().enumerate() {
            let (mut cu, mut cv) = (lvl.cluster_of[u.index()], lvl.cluster_of[v.index()]);
            if cu == cv {
                let Some(list) = self.intra_maps[level].get_mut(&cu) else {
                    continue;
                };
                let dead = self.intra_dead[level].entry(cu).or_insert(0);
                *dead += 1;
                if (*dead as usize) * 2 > list.len() {
                    list.retain(|&e| h.edge(e).is_some() && e != id);
                    *dead = 0;
                }
            } else {
                if cu > cv {
                    std::mem::swap(&mut cu, &mut cv);
                }
                if self.pair_maps[level].get(&(cu, cv)) == Some(&id) {
                    self.pair_maps[level].remove(&(cu, cv));
                }
            }
        }
    }

    /// The representative sparsifier edge between clusters `a` and `b` at
    /// `level`, if any.
    ///
    /// # Panics
    /// Panics if `level` is out of bounds.
    pub fn connecting_edge(&self, level: usize, a: u32, b: u32) -> Option<EdgeId> {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.pair_maps[level].get(&key).copied()
    }

    /// Like [`ClusterConnectivity::connecting_edge`], but filters out a
    /// representative that has died in `h` (deleted by churn and not yet
    /// repaired by a later include).
    pub fn connecting_live_edge(
        &self,
        level: usize,
        a: u32,
        b: u32,
        h: &DynGraph,
    ) -> Option<EdgeId> {
        self.connecting_edge(level, a, b)
            .filter(|&id| h.edge(id).is_some())
    }

    /// The sparsifier edges fully inside cluster `c` at `level`.
    ///
    /// # Panics
    /// Panics if `level` is out of bounds.
    pub fn intra_edges(&self, level: usize, c: u32) -> &[EdgeId] {
        self.intra_maps[level]
            .get(&c)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Number of distinct connected cluster pairs at `level` (statistics).
    ///
    /// # Panics
    /// Panics if `level` is out of bounds.
    pub fn num_connected_pairs(&self, level: usize) -> usize {
        self.pair_maps[level].len()
    }

    /// Exports the exact index state for persistence. Outer map keys are
    /// sorted (deterministic bytes); intra-edge lists are kept verbatim —
    /// their order feeds floating-point share accumulation in the
    /// redistribute path and must survive a round-trip bit-for-bit.
    pub(crate) fn export_state(&self) -> crate::state::ConnectivityState {
        let pair_maps = self
            .pair_maps
            .iter()
            .map(|m| {
                let mut v: Vec<(u32, u32, u32)> = m
                    .iter()
                    .map(|(&(a, b), &id)| (a, b, id.index() as u32))
                    .collect();
                v.sort_unstable_by_key(|&(a, b, _)| (a, b));
                v
            })
            .collect();
        let intra_maps = self
            .intra_maps
            .iter()
            .map(|m| {
                let mut v: Vec<(u32, Vec<u32>)> = m
                    .iter()
                    .map(|(&c, ids)| (c, ids.iter().map(|id| id.index() as u32).collect()))
                    .collect();
                v.sort_unstable_by_key(|&(c, _)| c);
                v
            })
            .collect();
        let intra_dead = self
            .intra_dead
            .iter()
            .map(|m| {
                let mut v: Vec<(u32, u32)> = m.iter().map(|(&c, &d)| (c, d)).collect();
                v.sort_unstable_by_key(|&(c, _)| c);
                v
            })
            .collect();
        crate::state::ConnectivityState {
            pair_maps,
            intra_maps,
            intra_dead,
        }
    }

    /// Rebuilds the index from persisted state (the inverse of
    /// [`ClusterConnectivity::export_state`]).
    pub(crate) fn from_state(state: &crate::state::ConnectivityState) -> Self {
        let pair_maps = state
            .pair_maps
            .iter()
            .map(|v| {
                v.iter()
                    .map(|&(a, b, id)| ((a, b), EdgeId::new(id as usize)))
                    .collect::<HashMap<_, _>>()
            })
            .collect();
        let intra_maps = state
            .intra_maps
            .iter()
            .map(|v| {
                v.iter()
                    .map(|(c, ids)| (*c, ids.iter().map(|&id| EdgeId::new(id as usize)).collect()))
                    .collect::<HashMap<u32, Vec<EdgeId>>>()
            })
            .collect();
        let intra_dead = state
            .intra_dead
            .iter()
            .map(|v| v.iter().copied().collect::<HashMap<u32, u32>>())
            .collect();
        ClusterConnectivity {
            pair_maps,
            intra_maps,
            intra_dead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lrd::LrdHierarchy;
    use ingrass_gen::{grid_2d, WeightModel};
    use ingrass_graph::Graph;

    fn setup(g: &Graph) -> (DynGraph, LrdHierarchy, ClusterConnectivity) {
        let r: Vec<f64> = g.edges().iter().map(|e| 1.0 / e.weight).collect();
        let h = LrdHierarchy::build(g, &r, None, 4.0, 64).unwrap();
        let d = DynGraph::from_graph(g);
        let c = ClusterConnectivity::build(&d, &h);
        (d, h, c)
    }

    #[test]
    fn level0_pair_map_mirrors_edges() {
        let g = grid_2d(5, 5, WeightModel::Unit, 1);
        let (d, _h, c) = setup(&g);
        // At the singleton level every edge connects two distinct clusters.
        assert_eq!(c.num_connected_pairs(0), g.num_edges());
        for (id, e) in d.edges_iter() {
            assert_eq!(c.connecting_edge(0, e.u.raw(), e.v.raw()), Some(id));
        }
        assert!(c.intra_edges(0, 0).is_empty());
    }

    #[test]
    fn top_level_holds_all_edges_as_intra() {
        let g = grid_2d(6, 4, WeightModel::Unit, 2);
        let (_d, h, c) = setup(&g);
        let top = h.num_levels() - 1;
        assert_eq!(c.num_connected_pairs(top), 0);
        assert_eq!(c.intra_edges(top, 0).len(), g.num_edges());
    }

    #[test]
    fn every_edge_is_intra_or_pair_at_every_level() {
        let g = grid_2d(8, 8, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 3);
        let (_d, h, c) = setup(&g);
        for level in 0..h.num_levels() {
            let intra_total: usize = (0..h.level(level).num_clusters as u32)
                .map(|cl| c.intra_edges(level, cl).len())
                .sum();
            // Pair maps deduplicate to one representative per pair, so
            // intra + distinct pairs ≤ edges, and intra counts every edge
            // inside clusters exactly once.
            let pairs = c.num_connected_pairs(level);
            assert!(intra_total + pairs <= g.num_edges());
            // All edges accounted: recompute directly.
            let lvl = h.level(level);
            let expect_intra = g
                .edges()
                .iter()
                .filter(|e| lvl.cluster_of[e.u.index()] == lvl.cluster_of[e.v.index()])
                .count();
            assert_eq!(intra_total, expect_intra);
        }
    }

    #[test]
    fn register_edge_updates_maps() {
        let g = grid_2d(4, 4, WeightModel::Unit, 4);
        let (mut d, h, mut c) = setup(&g);
        // Insert a brand-new long-range edge into H and register it.
        let (id, created) = d.add_edge(0.into(), 15.into(), 1.0).unwrap();
        assert!(created);
        let before = c.connecting_edge(0, 0, 15);
        assert!(before.is_none());
        c.register_edge(&h, &d, id, 0.into(), 15.into());
        assert_eq!(c.connecting_edge(0, 0, 15), Some(id));
        // At the top level it lands in the intra registry.
        let top = h.num_levels() - 1;
        assert!(c.intra_edges(top, 0).contains(&id));
    }

    #[test]
    fn unregister_drops_pair_and_register_repairs_dead_reps() {
        let g = grid_2d(4, 4, WeightModel::Unit, 5);
        let (mut d, h, mut c) = setup(&g);
        // Level 0: every edge is its own pair representative.
        let (id, e) = d.edges_iter().next().unwrap();
        assert_eq!(c.connecting_edge(0, e.u.raw(), e.v.raw()), Some(id));
        d.remove_edge(e.u, e.v).unwrap();
        assert_eq!(c.connecting_live_edge(0, e.u.raw(), e.v.raw(), &d), None);
        c.unregister_edge(&h, &d, id, e.u, e.v);
        assert_eq!(c.connecting_edge(0, e.u.raw(), e.v.raw()), None);
        // Re-inserting the pair registers the fresh id.
        let (id2, created) = d.add_edge(e.u, e.v, 2.0).unwrap();
        assert!(created);
        c.register_edge(&h, &d, id2, e.u, e.v);
        assert_eq!(c.connecting_edge(0, e.u.raw(), e.v.raw()), Some(id2));
        assert_eq!(
            c.connecting_live_edge(0, e.u.raw(), e.v.raw(), &d),
            Some(id2)
        );
    }

    #[test]
    fn intra_lists_compact_lazily_under_deletion() {
        let g = grid_2d(6, 6, WeightModel::Unit, 6);
        let (mut d, h, mut c) = setup(&g);
        let top = h.num_levels() - 1;
        let total = c.intra_edges(top, 0).len();
        assert_eq!(total, g.num_edges());
        // Delete well past half of all edges; the top-level intra list must
        // shrink (half-dead compaction) and never return a majority of dead
        // ids.
        let victims: Vec<_> = d.edges_iter().collect();
        let kill = total * 2 / 3;
        for &(id, e) in victims.iter().take(kill) {
            d.remove_edge(e.u, e.v).unwrap();
            c.unregister_edge(&h, &d, id, e.u, e.v);
        }
        let list = c.intra_edges(top, 0);
        assert!(
            list.len() < total,
            "top intra list never compacted: {} entries",
            list.len()
        );
        let live = list.iter().filter(|&&e| d.edge(e).is_some()).count();
        assert!(
            2 * live >= list.len(),
            "list majority-dead after compaction"
        );
    }

    #[test]
    fn representative_is_first_registered() {
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0), (0, 2, 1.0), (1, 3, 1.0)]).unwrap();
        let r = vec![1.0, 1.0, 1.0, 1.0];
        let h = LrdHierarchy::build(&g, &r, Some(1.5), 4.0, 64).unwrap();
        let d = DynGraph::from_graph(&g);
        let c = ClusterConnectivity::build(&d, &h);
        // Whatever level clusters {0,1} and {2,3} (if formed), the first
        // inter-edge in id order is the representative.
        for level in 0..h.num_levels() {
            let lvl = h.level(level);
            let (c0, c2) = (lvl.cluster_of[0], lvl.cluster_of[2]);
            if c0 != c2 {
                if let Some(rep) = c.connecting_edge(level, c0, c2) {
                    let e = d.edge(rep).unwrap();
                    let crossings: Vec<EdgeId> = d
                        .edges_iter()
                        .filter(|(_, e)| lvl.cluster_of[e.u.index()] != lvl.cluster_of[e.v.index()])
                        .map(|(i, _)| i)
                        .collect();
                    assert!(crossings.contains(&rep));
                    assert!(lvl.cluster_of[e.u.index()] != lvl.cluster_of[e.v.index()]);
                }
            }
        }
    }
}
