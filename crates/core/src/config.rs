//! Setup and update configuration.
//!
//! This module is the one-stop shop for every knob the engine reads:
//! [`SetupConfig`] / [`ResistanceBackend`] / [`DriftPolicy`] for the setup
//! phase, [`UpdateConfig`] for update batches, and (re-exported from their
//! home modules) the estimator configs [`KrylovConfig`] / [`JlConfig`] and
//! the serving layer's [`FactorPolicy`]. The facade crate's `config`
//! module re-exports all of them alongside the solve and store configs.

pub use crate::snapshot::FactorPolicy;
pub use ingrass_resistance::{JlConfig, KrylovConfig, KrylovOperator};

/// Which estimator supplies the per-edge effective resistances consumed by
/// the LRD decomposition (setup phase 1).
#[derive(Debug, Clone, PartialEq)]
pub enum ResistanceBackend {
    /// The paper's solve-free Krylov-subspace embedding (default).
    Krylov(KrylovConfig),
    /// Spielman–Srivastava projections with tree-preconditioned CG solves —
    /// sharper but performs `O(log N)` Laplacian solves (ablation).
    Jl(JlConfig),
    /// Use each edge's own resistance `1/w(e)` — the zero-cost floor
    /// (ablation; ignores parallel paths entirely).
    LocalOnly,
}

impl Default for ResistanceBackend {
    fn default() -> Self {
        ResistanceBackend::Krylov(KrylovConfig::default())
    }
}

/// When accumulated churn drift forces an automatic re-setup.
///
/// The paper treats setup as a one-time phase; this policy makes the
/// setup/update split configurable. Deletions and reweights degrade the
/// cached LRD embedding (cluster diameters were certified by paths that may
/// have used the churned edges); the engine's [`crate::UpdateLedger`] tracks
/// that degradation and, when any threshold below is crossed at the end of
/// an [`crate::InGrassEngine::apply_batch`] call, rebuilds the hierarchy
/// from the live sparsifier.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftPolicy {
    /// Re-setup when deleted weight exceeds this fraction of the sparsifier
    /// weight at the last (re)setup (default 0.2).
    pub max_deleted_weight_fraction: f64,
    /// Re-setup when accumulated churn distortion `Σ w·R̂` exceeds this
    /// fraction of the sparsifier's total leverage `n − 1` (default 0.25).
    pub max_distortion_fraction: f64,
    /// Re-setup when any single cluster absorbs more than this many stale
    /// operations (default 4096).
    pub max_cluster_staleness: u32,
    /// Master switch; `false` restores the paper's insert-only lifecycle
    /// where setup never re-runs (default `true`).
    pub auto_resetup: bool,
}

impl Default for DriftPolicy {
    fn default() -> Self {
        DriftPolicy {
            max_deleted_weight_fraction: 0.2,
            max_distortion_fraction: 0.25,
            max_cluster_staleness: 4096,
            auto_resetup: true,
        }
    }
}

impl DriftPolicy {
    /// A policy that never re-runs setup (the paper's hard lifecycle).
    pub fn never() -> Self {
        DriftPolicy {
            auto_resetup: false,
            ..Default::default()
        }
    }
}

/// Configuration of the one-time setup phase.
#[derive(Debug, Clone, PartialEq)]
pub struct SetupConfig {
    /// Resistance estimator for the sparsifier's edges.
    pub resistance: ResistanceBackend,
    /// Per-level growth factor `γ` of the resistance-diameter budget
    /// (default 4; must be > 1).
    pub diameter_growth: f64,
    /// Initial diameter budget `δ₀`. `None` (default) picks 4× the median
    /// estimated edge resistance — small enough that level 1 only merges
    /// tightly coupled nodes.
    pub initial_diameter: Option<f64>,
    /// Hard cap on the number of LRD levels (default 64 — effectively
    /// "until one cluster remains").
    pub max_levels: usize,
    /// RNG seed threaded into the resistance estimator.
    pub seed: u64,
    /// When churn drift triggers an automatic re-setup.
    pub drift: DriftPolicy,
}

impl Default for SetupConfig {
    fn default() -> Self {
        SetupConfig {
            resistance: ResistanceBackend::default(),
            diameter_growth: 4.0,
            initial_diameter: None,
            max_levels: 64,
            seed: 42,
            drift: DriftPolicy::default(),
        }
    }
}

impl SetupConfig {
    /// Returns the config with the given resistance backend.
    pub fn with_resistance(mut self, backend: ResistanceBackend) -> Self {
        self.resistance = backend;
        self
    }

    /// Returns the config with the given diameter growth factor.
    pub fn with_diameter_growth(mut self, gamma: f64) -> Self {
        self.diameter_growth = gamma;
        self
    }

    /// Returns the config with the given seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with the given drift policy.
    pub fn with_drift(mut self, drift: DriftPolicy) -> Self {
        self.drift = drift;
        self
    }
}

/// Configuration of one update batch.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateConfig {
    /// Target relative condition number `C = κ(L_G, L_H)`. Selects the
    /// filtering level: the deepest LRD level whose largest cluster has at
    /// most `C/2` nodes (paper Section III-C-2). Must be ≥ 2.
    pub target_condition: f64,
    /// Process the batch in decreasing estimated-distortion order
    /// (default `true`, per the paper; `false` keeps arrival order — an
    /// ablation knob).
    pub sort_by_distortion: bool,
    /// Explicit filtering level, overriding the one derived from
    /// `target_condition` (ablation knob; `None` = derive).
    pub filtering_level_override: Option<usize>,
}

impl Default for UpdateConfig {
    fn default() -> Self {
        UpdateConfig {
            target_condition: 100.0,
            sort_by_distortion: true,
            filtering_level_override: None,
        }
    }
}

impl UpdateConfig {
    /// Returns the config with the given target condition number.
    pub fn with_target_condition(mut self, target: f64) -> Self {
        self.target_condition = target;
        self
    }

    /// Returns the config with distortion-ordered processing on or off.
    pub fn with_sort_by_distortion(mut self, sort: bool) -> Self {
        self.sort_by_distortion = sort;
        self
    }

    /// Returns the config with an explicit filtering level (`None`
    /// restores derivation from the target condition number).
    pub fn with_filtering_level_override(mut self, level: Option<usize>) -> Self {
        self.filtering_level_override = level;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let s = SetupConfig::default();
        assert!(s.diameter_growth > 1.0);
        assert!(s.max_levels >= 8);
        assert!(matches!(s.resistance, ResistanceBackend::Krylov(_)));
        let u = UpdateConfig::default();
        assert!(u.target_condition >= 2.0);
        assert!(u.sort_by_distortion);
    }

    #[test]
    fn builder_methods_chain() {
        let s = SetupConfig::default()
            .with_diameter_growth(2.0)
            .with_seed(9)
            .with_resistance(ResistanceBackend::LocalOnly)
            .with_drift(DriftPolicy::never());
        assert_eq!(s.diameter_growth, 2.0);
        assert_eq!(s.seed, 9);
        assert!(matches!(s.resistance, ResistanceBackend::LocalOnly));
        assert!(!s.drift.auto_resetup);
    }

    #[test]
    fn update_config_builders_chain() {
        let u = UpdateConfig::default()
            .with_target_condition(32.0)
            .with_sort_by_distortion(false)
            .with_filtering_level_override(Some(3));
        assert_eq!(u.target_condition, 32.0);
        assert!(!u.sort_by_distortion);
        assert_eq!(u.filtering_level_override, Some(3));
    }

    #[test]
    fn drift_policy_defaults_are_sane() {
        let p = DriftPolicy::default();
        assert!(p.auto_resetup);
        assert!(p.max_deleted_weight_fraction > 0.0 && p.max_deleted_weight_fraction < 1.0);
        assert!(p.max_distortion_fraction > 0.0);
        assert!(!DriftPolicy::never().auto_resetup);
    }
}
