//! Snapshot-isolated serving: the engine's ownership story refactored from
//! `&mut`-everywhere to publish/subscribe.
//!
//! The incremental engine is inherently single-writer — every mutation
//! rethreads the sparsifier, the connectivity index, and the ledger — but
//! the *consumers* of the sparsifier (Laplacian solves, effective-resistance
//! queries, condition monitoring) are read-only and embarrassingly
//! concurrent. [`SnapshotEngine`] splits the two roles:
//!
//! * the **writer** owns the [`crate::InGrassEngine`] and applies update
//!   batches exactly as before; after every state-changing batch it
//!   *publishes* an immutable [`SparsifierSnapshot`];
//! * any number of **readers** hold a cheap [`SnapshotReader`] handle and
//!   load the current snapshot whenever they start a piece of work. A
//!   reader keeps using the snapshot it loaded for as long as it likes —
//!   the writer never invalidates memory out from under it (the snapshot is
//!   `Arc`-shared and dropped only when the last holder lets go).
//!
//! Publication is a pointer swap under a briefly-held lock: readers block
//! the writer only for the nanoseconds of the swap itself, never for the
//! duration of a solve, and the writer blocks readers only while replacing
//! one `Arc`. Staleness is explicit and bounded: a reader's view is the
//! state as of the [`SparsifierSnapshot::version`] it loaded, and the
//! `(instance_id, epoch, version)` tag says exactly which state that is.

use crate::config::SetupConfig;
use crate::engine::InGrassEngine;
use crate::error::InGrassError;
use crate::ledger::UpdateOp;
use crate::lrd::LrdHierarchy;
use crate::precond::SparsifierPrecond;
use crate::report::{PhaseTimer, UpdateReport};
use crate::shard::StitchedPrecond;
use crate::{Result, UpdateConfig};
use ingrass_graph::{Graph, NodeId};
use ingrass_linalg::{CsrMatrix, Preconditioner};
use ingrass_metrics::ShardStats;
use std::sync::{Arc, RwLock};

/// The preconditioner a snapshot carries: the single-engine grounded
/// Cholesky factor, or the sharded engine's Schur-complement-stitched
/// block factor. Both are exact solves of the snapshot's sparsifier
/// Laplacian, so every consumer (PCG preconditioning, exact
/// effective-resistance queries) treats them uniformly through
/// [`Preconditioner`].
#[derive(Debug, Clone)]
pub enum SnapshotPrecond {
    /// One grounded sparse Cholesky factor of the whole sparsifier.
    Mono(SparsifierPrecond),
    /// Per-shard interior factors stitched over the boundary Schur
    /// complement ([`crate::ShardedEngine`]).
    Sharded(StitchedPrecond),
}

impl SnapshotPrecond {
    /// Stored factor entries (all blocks for the sharded variant).
    pub fn factor_nnz(&self) -> usize {
        match self {
            SnapshotPrecond::Mono(p) => p.factor_nnz(),
            SnapshotPrecond::Sharded(p) => p.factor_nnz(),
        }
    }

    /// Estimated numeric-refactorization work of the factor's pattern.
    pub fn factor_flops(&self) -> f64 {
        match self {
            SnapshotPrecond::Mono(p) => p.factor_flops(),
            SnapshotPrecond::Sharded(p) => p.factor_flops(),
        }
    }

    /// The engine (or coordinator) epoch the factor was built at.
    pub fn epoch(&self) -> u64 {
        match self {
            SnapshotPrecond::Mono(p) => p.epoch(),
            SnapshotPrecond::Sharded(p) => p.epoch(),
        }
    }

    /// The node whose row/column was grounded out (always 0 today).
    pub fn ground_node(&self) -> usize {
        match self {
            SnapshotPrecond::Mono(p) => p.ground_node(),
            SnapshotPrecond::Sharded(p) => p.ground_node(),
        }
    }
}

impl Preconditioner for SnapshotPrecond {
    fn dim(&self) -> usize {
        match self {
            SnapshotPrecond::Mono(p) => p.dim(),
            SnapshotPrecond::Sharded(p) => p.dim(),
        }
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        match self {
            SnapshotPrecond::Mono(p) => p.apply(r, z),
            SnapshotPrecond::Sharded(p) => p.apply(r, z),
        }
    }
}

/// Aggregate resistance statistics of a snapshot's sparsifier, computed
/// from the hierarchy's `O(log N)` resistance bounds at publish time.
///
/// These are the serving-side analogue of the drift tracker: a reader can
/// judge how much spectral mass its (possibly stale) view carries without
/// touching the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResistanceSummary {
    /// Live sparsifier edges at publish time.
    pub edges: usize,
    /// Total sparsifier edge weight.
    pub total_weight: f64,
    /// Σ `w·R̂` over all sparsifier edges — the total estimated spectral
    /// mass (compare against `n − 1`, the value for an ideal sparsifier).
    pub total_distortion: f64,
    /// Largest single-edge `w·R̂` contribution.
    pub max_edge_distortion: f64,
}

/// An immutable, epoch-tagged view of the sparsifier, published by a
/// [`SnapshotEngine`] and shared by reference counting.
///
/// # Invariants
///
/// * **Immutability** — nothing behind this type ever changes after
///   [`SnapshotEngine::publish`] returns. Every field is plain owned data
///   (or an `Arc` to data that is itself frozen for the snapshot's epoch),
///   so a snapshot may be read from any number of threads without
///   synchronization. The type is `Send + Sync`.
/// * **Internal consistency** — [`SparsifierSnapshot::graph`],
///   [`SparsifierSnapshot::laplacian`], and
///   [`SparsifierSnapshot::preconditioner`] all describe the *same* state
///   of the sparsifier: the Laplacian is built from the graph, and the
///   grounded Cholesky factor is exact for that Laplacian — applying the
///   preconditioner to a consistent right-hand side solves `L_H x = b` in
///   one shot (PCG against [`SparsifierSnapshot::laplacian`] converges in
///   ≤ 2 iterations).
/// * **Tagging** — `(instance_id, epoch, version)` equals the owning
///   engine's [`crate::InGrassEngine::instance_id`] /
///   [`crate::InGrassEngine::epoch`] / [`crate::InGrassEngine::version`]
///   at publish time. Snapshots from one engine are totally ordered by
///   `version`; `epoch` moves only at re-setups.
/// * **Checksum** — [`SparsifierSnapshot::checksum`] was computed over the
///   Laplacian's CSR arrays (plus the tag) at publish time;
///   [`SparsifierSnapshot::verify_checksum`] recomputes it. A mismatch
///   would mean a torn publish — which the `Arc`-swap protocol makes
///   impossible, and the concurrency suites assert exactly that.
/// * **Longevity** — a snapshot outlives engine churn: re-setups and
///   further batches never touch it, so a reader holding an old epoch's
///   snapshot keeps getting exact answers *for that epoch's state*.
///   Dropping the last `Arc` frees the factor with it.
#[derive(Debug)]
pub struct SparsifierSnapshot {
    instance_id: u64,
    epoch: u64,
    version: u64,
    sequence: u64,
    graph: Graph,
    laplacian: Arc<CsrMatrix>,
    precond: SnapshotPrecond,
    hierarchy: Arc<LrdHierarchy>,
    resistance: ResistanceSummary,
    checksum: u64,
}

/// FNV-1a over a byte slice, continuing from `h`.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl SparsifierSnapshot {
    /// Builds a snapshot of the engine's current state. `hierarchy` must be
    /// a clone of the engine's hierarchy at its current epoch, and
    /// `precond` a factor consistent with the engine's current sparsifier
    /// (the [`SnapshotEngine`] hands in a clone of the live factor it
    /// maintains incrementally).
    fn capture(
        engine: &InGrassEngine,
        hierarchy: Arc<LrdHierarchy>,
        sequence: u64,
        precond: SparsifierPrecond,
    ) -> Result<SparsifierSnapshot> {
        SparsifierSnapshot::assemble(
            engine.instance_id(),
            engine.epoch(),
            engine.version(),
            sequence,
            engine.sparsifier_graph(),
            SnapshotPrecond::Mono(precond),
            hierarchy,
        )
    }

    /// Builds a snapshot from already-materialised parts. This is the
    /// publish path shared by [`SnapshotEngine`] (mono factor, engine
    /// tags) and [`crate::ShardedEngine`] (stitched factor, coordinator
    /// tags); `graph` and `precond` must describe the same sparsifier
    /// state, and `hierarchy` the epoch's decomposition.
    pub(crate) fn assemble(
        instance_id: u64,
        epoch: u64,
        version: u64,
        sequence: u64,
        graph: Graph,
        precond: SnapshotPrecond,
        hierarchy: Arc<LrdHierarchy>,
    ) -> Result<SparsifierSnapshot> {
        let laplacian = Arc::new(graph.laplacian());

        let mut total_weight = 0.0;
        let mut total_distortion = 0.0;
        let mut max_edge_distortion = 0.0f64;
        for e in graph.edges() {
            total_weight += e.weight;
            let r = hierarchy.resistance_bound(e.u, e.v);
            if r.is_finite() {
                let d = e.weight * r;
                total_distortion += d;
                max_edge_distortion = max_edge_distortion.max(d);
            }
        }
        let resistance = ResistanceSummary {
            edges: graph.num_edges(),
            total_weight,
            total_distortion,
            max_edge_distortion,
        };

        let mut snap = SparsifierSnapshot {
            instance_id,
            epoch,
            version,
            sequence,
            graph,
            laplacian,
            precond,
            hierarchy,
            resistance,
            checksum: 0,
        };
        snap.checksum = snap.compute_checksum();
        Ok(snap)
    }

    /// Checksum over the Laplacian CSR arrays and the snapshot tag.
    fn compute_checksum(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = fnv1a(h, &self.instance_id.to_le_bytes());
        h = fnv1a(h, &self.epoch.to_le_bytes());
        h = fnv1a(h, &self.version.to_le_bytes());
        h = fnv1a(h, &(self.laplacian.n_rows() as u64).to_le_bytes());
        for r in 0..self.laplacian.n_rows() {
            let (cols, vals) = self.laplacian.row(r);
            for &c in cols {
                h = fnv1a(h, &c.to_le_bytes());
            }
            for &v in vals {
                h = fnv1a(h, &v.to_bits().to_le_bytes());
            }
        }
        h
    }

    /// The owning engine's process-unique identity
    /// ([`crate::InGrassEngine::instance_id`]).
    pub fn instance_id(&self) -> u64 {
        self.instance_id
    }

    /// The engine epoch (re-setup count) this snapshot belongs to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The engine's monotone state version at publish time. Snapshots of
    /// one engine are totally ordered by this field.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Publish sequence number within the owning [`SnapshotEngine`]
    /// (1 for the snapshot published by setup, then +1 per publish).
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// Node count of the sparsifier.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// The frozen sparsifier graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The sparsifier Laplacian `L_H` in CSR form.
    pub fn laplacian(&self) -> &CsrMatrix {
        &self.laplacian
    }

    /// The Laplacian by shared handle — for callers (queues, services) that
    /// outlive the borrow.
    pub fn laplacian_arc(&self) -> Arc<CsrMatrix> {
        Arc::clone(&self.laplacian)
    }

    /// The exact factorisation of `L_H` — one grounded Cholesky factor for
    /// a [`SnapshotEngine`] publish, or a Schur-stitched block factor for a
    /// [`crate::ShardedEngine`] publish. Either way it solves this
    /// snapshot's sparsifier exactly, so it preconditions the original
    /// graph's Laplacian identically.
    pub fn preconditioner(&self) -> &SnapshotPrecond {
        &self.precond
    }

    /// Aggregate resistance statistics captured at publish time.
    pub fn resistance_summary(&self) -> &ResistanceSummary {
        &self.resistance
    }

    /// The hierarchy's `O(log N)` effective-resistance upper bound between
    /// two nodes — the same estimate the update phase ranks insertions by,
    /// served from the frozen epoch without touching the engine.
    pub fn resistance_bound(&self, u: NodeId, v: NodeId) -> f64 {
        self.hierarchy.resistance_bound(u, v)
    }

    /// *Exact* effective resistance between `u` and `v` in this snapshot's
    /// sparsifier, via one grounded-factor solve of `L_H x = e_u − e_v`.
    ///
    /// This is the resistance-serving workload: `O(nnz(L))` per query
    /// against a frozen view, with no iteration and no engine access.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of bounds.
    pub fn effective_resistance(&self, u: NodeId, v: NodeId) -> f64 {
        let n = self.num_nodes();
        assert!(u.index() < n && v.index() < n, "node out of bounds");
        if u == v {
            return 0.0;
        }
        let mut b = vec![0.0; n];
        b[u.index()] = 1.0;
        b[v.index()] = -1.0;
        let mut x = vec![0.0; n];
        self.precond.apply(&b, &mut x);
        x[u.index()] - x[v.index()]
    }

    /// The checksum computed over the Laplacian CSR arrays at publish time.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Recomputes the checksum and compares it against the value stored at
    /// publish time. `false` would indicate a torn snapshot; the stress
    /// suites call this from every reader thread.
    pub fn verify_checksum(&self) -> bool {
        self.compute_checksum() == self.checksum
    }
}

/// What one [`SnapshotEngine::publish`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishReport {
    /// Engine epoch of the published snapshot.
    pub epoch: u64,
    /// Engine version of the published snapshot.
    pub version: u64,
    /// Publish sequence number ([`SparsifierSnapshot::sequence`]).
    pub sequence: u64,
    /// Wall seconds spent building the snapshot (graph freeze + Laplacian
    /// assembly + factor maintenance + resistance summary) — the
    /// publish latency the `serve/<case>` perf scenarios track.
    pub publish_seconds: f64,
    /// Stored entries of the snapshot's Cholesky factor.
    pub factor_nnz: usize,
    /// Estimated numeric-refactorization work of the factor's pattern
    /// (`Σ` column-nnz²) — the cost model the `serve/<case>` flat-trend
    /// gate normalizes publish latency by.
    pub factor_flops: f64,
    /// Live sparsifier edges in the snapshot.
    pub edges: usize,
    /// Whether this publish patched the live factor with rank-1
    /// up/downdates (`true`) instead of refactorizing from scratch.
    pub factor_updated: bool,
    /// Cumulative incremental factor patches over the engine's lifetime.
    pub factor_updates: u64,
    /// Cumulative factor rebuilds over the engine's lifetime (includes the
    /// initial build at setup, epoch changes, fill-budget and numerical
    /// fallbacks, and the periodic drift-bounding rebuild).
    pub factor_refactors: u64,
    /// Per-shard work statistics for a [`crate::ShardedEngine`] publish;
    /// `None` for the single-engine [`SnapshotEngine`].
    pub shard: Option<ShardStats>,
}

/// Policy for maintaining the live Cholesky factor across publishes.
///
/// Publishes are served by the cheapest of three maintenance tiers:
///
/// 1. **Patch** — small batches apply one rank-1 update/downdate per net
///    edge-weight delta to the live factor. Cost scales with the batch,
///    not the graph.
/// 2. **Numeric refactorization** — batches too large to patch profitably
///    (see [`FactorPolicy::max_patch_fraction`]), fill-budget overruns,
///    downdate breakdowns, and the drift backstop refactor numerically
///    under the *cached* elimination ordering. Computing a fill-reducing
///    ordering dominates a full rebuild, and within one epoch the
///    sparsifier's shape drifts slowly, so reusing the ordering keeps this
///    tier cheap and its cost flat across epochs.
/// 3. **Full rebuild** — ordering recompute plus numeric factorization,
///    only when the engine epoch moves (drift re-setup replaced the
///    hierarchy), the node count changed, or the cached ordering has gone
///    stale (factor fill outgrew `order_staleness ×` its size at ordering
///    time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactorPolicy {
    /// Patch the live factor incrementally when possible; `false` restores
    /// the refactorize-every-publish behaviour.
    pub incremental: bool,
    /// Fill budget as a growth factor: a patch that would push the
    /// factor's stored entries past `fill_growth ×` its nnz at the last
    /// rebuild falls back to refactorization.
    pub fill_growth: f64,
    /// Hard cap on consecutive incremental publishes before a rebuild is
    /// forced, bounding rounding drift in the patched factor.
    pub max_updates_between_refactors: u64,
    /// Patch only batches whose delta count is at most this fraction of
    /// the factor's dimension; larger batches go straight to a numeric
    /// refactorization under the cached ordering. Each rank-1 patch walks
    /// the column closure of its edge (worst case most of the factor) and
    /// leaves behind fill the cached ordering never planned for, so
    /// patching a bulk batch is both slower than one numeric rebuild *and*
    /// degrades every later publish. The default keeps the patch tier for
    /// the near-single-op batches it is built for (interactive edits,
    /// drift probes) and routes bulk churn to the numeric tier.
    pub max_patch_fraction: f64,
    /// Staleness bound for the cached elimination ordering: once a
    /// numeric rebuild's factor outgrows `order_staleness ×` the factor
    /// size at ordering time, the next rebuild recomputes the ordering.
    /// Deliberately generous — an ordering recompute costs orders of
    /// magnitude more than the extra fill it removes, so it should fire
    /// only when fill has genuinely blown up (epoch moves refresh the
    /// ordering anyway).
    pub order_staleness: f64,
}

impl Default for FactorPolicy {
    fn default() -> Self {
        FactorPolicy {
            incremental: true,
            fill_growth: 2.0,
            max_updates_between_refactors: 256,
            max_patch_fraction: 0.002,
            order_staleness: 8.0,
        }
    }
}

impl FactorPolicy {
    /// Checks every field is inside its domain, so publish-time code can
    /// rely on the values verbatim instead of clamping them silently.
    ///
    /// # Errors
    /// [`InGrassError::InvalidConfig`] naming the offending field if
    /// `fill_growth < 1` (the budget would undercut the factor's own
    /// size), `max_patch_fraction ∉ [0, 1]`, `order_staleness < 1`, or any
    /// of the three is not finite.
    pub fn validate(&self) -> Result<()> {
        if !self.fill_growth.is_finite() || self.fill_growth < 1.0 {
            return Err(InGrassError::InvalidConfig(format!(
                "fill_growth must be a finite value ≥ 1, got {}",
                self.fill_growth
            )));
        }
        if !self.max_patch_fraction.is_finite() || !(0.0..=1.0).contains(&self.max_patch_fraction) {
            return Err(InGrassError::InvalidConfig(format!(
                "max_patch_fraction must be within [0, 1], got {}",
                self.max_patch_fraction
            )));
        }
        if !self.order_staleness.is_finite() || self.order_staleness < 1.0 {
            return Err(InGrassError::InvalidConfig(format!(
                "order_staleness must be a finite value ≥ 1, got {}",
                self.order_staleness
            )));
        }
        Ok(())
    }

    /// Returns the policy with [`FactorPolicy::incremental`] replaced.
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Returns the policy with [`FactorPolicy::fill_growth`] replaced.
    pub fn with_fill_growth(mut self, fill_growth: f64) -> Self {
        self.fill_growth = fill_growth;
        self
    }

    /// Returns the policy with
    /// [`FactorPolicy::max_updates_between_refactors`] replaced.
    pub fn with_max_updates_between_refactors(mut self, max: u64) -> Self {
        self.max_updates_between_refactors = max;
        self
    }

    /// Returns the policy with [`FactorPolicy::max_patch_fraction`]
    /// replaced.
    pub fn with_max_patch_fraction(mut self, fraction: f64) -> Self {
        self.max_patch_fraction = fraction;
        self
    }

    /// Returns the policy with [`FactorPolicy::order_staleness`] replaced.
    pub fn with_order_staleness(mut self, staleness: f64) -> Self {
        self.order_staleness = staleness;
        self
    }
}

/// What one [`SnapshotEngine::apply_batch`] did: the engine's own update
/// report plus the publish that followed (if the batch changed state).
#[derive(Debug, Clone)]
pub struct BatchPublishReport {
    /// The inner engine's report for the batch.
    pub update: UpdateReport,
    /// The publish triggered by the batch; `None` for an empty batch (the
    /// engine version did not move, so the current snapshot already *is*
    /// the state).
    pub publish: Option<PublishReport>,
}

/// The shared cell readers subscribe to. Publication replaces the `Arc`
/// under a write lock held only for the swap.
#[derive(Debug)]
pub(crate) struct SnapshotCell {
    current: RwLock<Arc<SparsifierSnapshot>>,
}

impl SnapshotCell {
    pub(crate) fn new(initial: Arc<SparsifierSnapshot>) -> SnapshotCell {
        SnapshotCell {
            current: RwLock::new(initial),
        }
    }

    pub(crate) fn load(&self) -> Arc<SparsifierSnapshot> {
        // A poisoned lock only means some reader panicked mid-clone; the
        // data is an Arc swap away from consistent either way.
        match self.current.read() {
            Ok(g) => Arc::clone(&g),
            Err(p) => Arc::clone(&p.into_inner()),
        }
    }

    pub(crate) fn store(&self, snap: Arc<SparsifierSnapshot>) {
        match self.current.write() {
            Ok(mut g) => *g = snap,
            Err(p) => *p.into_inner() = snap,
        }
    }
}

/// A cheap, cloneable subscription to a [`SnapshotEngine`]'s published
/// snapshots. Handles are `Send`; readers on other threads call
/// [`SnapshotReader::current`] to load the newest snapshot and then work
/// off it without further synchronization.
#[derive(Debug, Clone)]
pub struct SnapshotReader {
    cell: Arc<SnapshotCell>,
}

impl SnapshotReader {
    pub(crate) fn from_cell(cell: Arc<SnapshotCell>) -> SnapshotReader {
        SnapshotReader { cell }
    }

    /// The most recently published snapshot.
    pub fn current(&self) -> Arc<SparsifierSnapshot> {
        self.cell.load()
    }
}

/// A single-writer wrapper around [`crate::InGrassEngine`] that publishes
/// an immutable [`SparsifierSnapshot`] after every state-changing batch,
/// for any number of concurrent readers.
///
/// The writer API mirrors the engine ([`SnapshotEngine::apply_batch`],
/// [`SnapshotEngine::resetup`]); readers come from
/// [`SnapshotEngine::reader`]. Concurrency model and staleness contract:
/// publication swaps an `Arc` under a briefly-held lock, so readers block
/// the writer only for the swap itself; a reader's view is exact for the
/// [`SparsifierSnapshot::version`] it loaded, and old views stay valid
/// (and allocated) until their last holder drops them.
///
/// # Example
///
/// ```
/// use ingrass::{SnapshotEngine, SetupConfig, UpdateConfig, UpdateOp};
/// use ingrass_graph::Graph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let h0 = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)])?;
/// let mut engine = SnapshotEngine::setup(&h0, &SetupConfig::default())?;
/// let reader = engine.reader();
/// let before = reader.current();
///
/// let report = engine.apply_batch(
///     &[UpdateOp::Insert { u: 0, v: 2, weight: 0.5 }],
///     &UpdateConfig::default(),
/// )?;
/// assert!(report.publish.is_some());
/// let after = reader.current();
/// assert!(after.version() > before.version()); // readers see the new state…
/// assert!(before.verify_checksum());           // …and the old view stays intact.
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SnapshotEngine {
    engine: InGrassEngine,
    /// The current epoch's hierarchy, cloned out of the engine once per
    /// epoch so every snapshot of the epoch shares one allocation.
    hierarchy: Arc<LrdHierarchy>,
    hierarchy_epoch: u64,
    cell: Arc<SnapshotCell>,
    sequence: u64,
    /// The live factor, patched in place across ordinary publishes and
    /// cloned into every snapshot; rebuilt per [`FactorPolicy`].
    factor: SparsifierPrecond,
    /// `false` after a failed patch left `factor` numerically unusable —
    /// the next publish must rebuild regardless of policy.
    factor_valid: bool,
    factor_policy: FactorPolicy,
    updates_since_refactor: u64,
    factor_updates: u64,
    factor_refactors: u64,
}

impl SnapshotEngine {
    /// Runs engine setup and publishes the initial snapshot (sequence 1).
    ///
    /// # Errors
    /// As for [`crate::InGrassEngine::setup`].
    pub fn setup(h0: &Graph, cfg: &SetupConfig) -> Result<Self> {
        Self::from_engine(InGrassEngine::setup(h0, cfg)?)
    }

    /// Wraps an already-set-up engine and publishes its current state as
    /// the initial snapshot.
    ///
    /// # Errors
    /// Propagates preconditioner extraction failure (cannot happen while
    /// the engine's connectivity invariant holds).
    pub fn from_engine(mut engine: InGrassEngine) -> Result<Self> {
        let hierarchy = Arc::new(engine.hierarchy().clone());
        let hierarchy_epoch = engine.epoch();
        // Deltas journaled before the wrap describe mutations the fresh
        // factor build below already sees — drop them.
        let _ = engine.take_edge_deltas();
        let factor = engine.preconditioner()?;
        let snap = SparsifierSnapshot::capture(&engine, Arc::clone(&hierarchy), 1, factor.clone())?;
        Ok(SnapshotEngine {
            engine,
            hierarchy,
            hierarchy_epoch,
            cell: Arc::new(SnapshotCell::new(Arc::new(snap))),
            sequence: 1,
            factor,
            factor_valid: true,
            factor_policy: FactorPolicy::default(),
            updates_since_refactor: 0,
            factor_updates: 0,
            factor_refactors: 1,
        })
    }

    /// Replaces the [`FactorPolicy`] governing incremental maintenance of
    /// the live factor (builder form).
    ///
    /// # Errors
    /// [`InGrassError::InvalidConfig`] if the policy fails
    /// [`FactorPolicy::validate`] — out-of-domain values are rejected here
    /// rather than silently clamped at publish time.
    pub fn with_factor_policy(mut self, policy: FactorPolicy) -> Result<Self> {
        self.set_factor_policy(policy)?;
        Ok(self)
    }

    /// Replaces the [`FactorPolicy`] governing incremental maintenance of
    /// the live factor.
    ///
    /// # Errors
    /// [`InGrassError::InvalidConfig`] if the policy fails
    /// [`FactorPolicy::validate`]; the previous policy stays in effect.
    pub fn set_factor_policy(&mut self, policy: FactorPolicy) -> Result<()> {
        policy.validate()?;
        self.factor_policy = policy;
        Ok(())
    }

    /// The [`FactorPolicy`] currently in effect.
    pub fn factor_policy(&self) -> FactorPolicy {
        self.factor_policy
    }

    /// Publishes that patched the live factor incrementally so far.
    pub fn factor_updates(&self) -> u64 {
        self.factor_updates
    }

    /// Factor rebuilds so far (≥ 1: setup builds the first factor).
    pub fn factor_refactors(&self) -> u64 {
        self.factor_refactors
    }

    /// A new reader subscription. Clone freely; hand to other threads.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader {
            cell: Arc::clone(&self.cell),
        }
    }

    /// The most recently published snapshot (writer-side convenience;
    /// readers use [`SnapshotReader::current`]).
    pub fn snapshot(&self) -> Arc<SparsifierSnapshot> {
        self.cell.load()
    }

    /// Read access to the wrapped engine (stats, hierarchy, ledger).
    ///
    /// Intentionally *no* `engine_mut`: every mutation must flow through
    /// [`SnapshotEngine::apply_batch`] / [`SnapshotEngine::resetup`] so the
    /// published snapshot can never silently fall behind the engine.
    pub fn engine(&self) -> &InGrassEngine {
        &self.engine
    }

    /// Snapshots published so far (including the one from setup).
    pub fn publishes(&self) -> u64 {
        self.sequence
    }

    /// Applies one update batch through the wrapped engine and publishes a
    /// fresh snapshot if the batch changed state (non-empty batch, or a
    /// drift-triggered re-setup inside it).
    ///
    /// # Errors
    /// As for [`crate::InGrassEngine::apply_batch`], plus preconditioner
    /// extraction failure at publish.
    pub fn apply_batch(
        &mut self,
        ops: &[UpdateOp],
        cfg: &UpdateConfig,
    ) -> Result<BatchPublishReport> {
        let before = self.engine.version();
        let update = self.engine.apply_batch(ops, cfg)?;
        let publish = if self.engine.version() != before {
            Some(self.publish()?)
        } else {
            None
        };
        Ok(BatchPublishReport { update, publish })
    }

    /// Forces a re-setup of the wrapped engine and publishes the new
    /// epoch's snapshot.
    ///
    /// # Errors
    /// As for [`crate::InGrassEngine::resetup`].
    pub fn resetup(&mut self) -> Result<PublishReport> {
        self.engine.resetup()?;
        self.publish()
    }

    /// Captures the engine's current state into a fresh snapshot and swaps
    /// it in as the current one. Readers holding older snapshots are
    /// unaffected; the previous snapshot is freed once its last holder
    /// drops it.
    ///
    /// The expensive half of the split is maintaining the factor, and this
    /// is where the incremental tentpole pays off: ordinary batches drain
    /// the engine's edge-delta journal and patch the live factor with one
    /// rank-1 update/downdate per net delta (additions first, so every
    /// intermediate matrix stays SPD). Batches too large to patch
    /// profitably, fill-budget overruns, downdate breakdowns, and the
    /// drift backstop refactor *numerically* under the cached elimination
    /// ordering; only an epoch move (or a stale ordering) pays for a full
    /// rebuild with an ordering recompute — see [`FactorPolicy`]. The
    /// snapshot then shares a clone of the maintained factor.
    ///
    /// # Errors
    /// Preconditioner rebuild failure (disconnected or degenerate
    /// sparsifier — cannot happen while engine invariants hold).
    pub fn publish(&mut self) -> Result<PublishReport> {
        let timer = PhaseTimer::start();
        if self.hierarchy_epoch != self.engine.epoch() {
            self.hierarchy = Arc::new(self.engine.hierarchy().clone());
            self.hierarchy_epoch = self.engine.epoch();
        }
        let deltas = self.engine.take_edge_deltas();
        let policy = self.factor_policy;
        let same_epoch = self.factor.epoch() == self.engine.epoch();
        let mut factor_updated = false;
        if policy.incremental
            && self.factor_valid
            && same_epoch
            && self.updates_since_refactor < policy.max_updates_between_refactors
            && (deltas.len() as f64) <= policy.max_patch_fraction * self.factor.num_nodes() as f64
        {
            // `fill_growth ≥ 1` is enforced at policy-set time
            // ([`FactorPolicy::validate`]), so the budget never undercuts
            // the factor's own size.
            let budget = ((self.factor.built_nnz() as f64) * policy.fill_growth).ceil();
            match self.factor.apply_edge_deltas(&deltas, budget as usize) {
                Ok(()) => factor_updated = true,
                // A failed patch may have applied a prefix of the batch:
                // the factor is unusable until the rebuild below succeeds.
                Err(_) => self.factor_valid = false,
            }
        }
        if factor_updated {
            self.factor_updates += 1;
            self.updates_since_refactor += 1;
        } else {
            // Rebuild tier: reuse the cached elimination ordering (numeric
            // refactorization only) while the epoch stands, the node count
            // matches, and the ordering is still fresh; recompute the
            // ordering otherwise. A failed cached-order rebuild (e.g. the
            // sparsifier changed shape more than expected) falls through
            // to the full build rather than erroring the publish.
            let reuse = same_epoch
                && self.factor.num_nodes() == self.engine.sparsifier().num_nodes()
                && self.factor.order_is_fresh(policy.order_staleness);
            let rebuilt = if reuse {
                self.factor
                    .rebuild_numeric(self.engine.sparsifier(), self.engine.epoch())
                    .or_else(|_| self.engine.preconditioner())
            } else {
                self.engine.preconditioner()
            };
            self.factor = rebuilt?;
            self.factor_valid = true;
            self.factor_refactors += 1;
            self.updates_since_refactor = 0;
        }
        // The counter moves only on success: a failed capture must leave
        // publishes()/sequence untouched (no skipped sequence numbers).
        let snap = Arc::new(SparsifierSnapshot::capture(
            &self.engine,
            Arc::clone(&self.hierarchy),
            self.sequence + 1,
            self.factor.clone(),
        )?);
        self.sequence += 1;
        let report = PublishReport {
            epoch: snap.epoch(),
            version: snap.version(),
            sequence: snap.sequence(),
            publish_seconds: timer.total().as_secs_f64(),
            factor_nnz: snap.preconditioner().factor_nnz(),
            factor_flops: snap.preconditioner().factor_flops(),
            edges: snap.resistance_summary().edges,
            factor_updated,
            factor_updates: self.factor_updates,
            factor_refactors: self.factor_refactors,
            shard: None,
        };
        self.cell.store(snap);
        Ok(report)
    }

    /// Exports the serving layer's complete state for persistence: the
    /// wrapped engine ([`crate::InGrassEngine::export_state`]), the live
    /// factor with its accumulated rank-1 patches intact, and the
    /// policy counters that drive future maintenance-tier decisions.
    ///
    /// This is the payload `ingrass-store` serializes into durable
    /// snapshots; [`SnapshotEngine::from_state`] is its inverse.
    pub fn export_state(&self) -> crate::state::ServingState {
        crate::state::ServingState {
            engine: self.engine.export_state(),
            factor: self.factor.export_state(),
            factor_valid: self.factor_valid,
            sequence: self.sequence,
            factor_policy: self.factor_policy,
            updates_since_refactor: self.updates_since_refactor,
            factor_updates: self.factor_updates,
            factor_refactors: self.factor_refactors,
        }
    }

    /// Restores a serving engine from persisted state and publishes the
    /// restored view as the current snapshot (at the *restored* sequence
    /// number — restoring is not a publish).
    ///
    /// Unlike [`SnapshotEngine::from_engine`], this must **not** drain the
    /// engine's delta journal or rebuild the factor: the persisted factor
    /// already reflects exactly the deltas drained before export, and the
    /// journal holds exactly those not yet applied to it — rebuilding
    /// either would fork the restored run's rounding from the original's.
    ///
    /// # Errors
    /// [`InGrassError::InvalidConfig`] /
    /// [`InGrassError::BadSparsifier`] if the engine state, factor state,
    /// or factor policy fails validation, or if the factor's dimension
    /// disagrees with the restored sparsifier.
    pub fn from_state(state: crate::state::ServingState) -> Result<Self> {
        state.factor_policy.validate()?;
        let engine = InGrassEngine::from_state(state.engine)?;
        let factor = SparsifierPrecond::from_state(state.factor)?;
        if factor.num_nodes() != engine.sparsifier().num_nodes() {
            return Err(InGrassError::BadSparsifier(format!(
                "persisted factor grounds {} nodes, sparsifier has {}",
                factor.num_nodes(),
                engine.sparsifier().num_nodes()
            )));
        }
        let hierarchy = Arc::new(engine.hierarchy().clone());
        let hierarchy_epoch = engine.epoch();
        let snap = SparsifierSnapshot::capture(
            &engine,
            Arc::clone(&hierarchy),
            state.sequence,
            factor.clone(),
        )?;
        Ok(SnapshotEngine {
            engine,
            hierarchy,
            hierarchy_epoch,
            cell: Arc::new(SnapshotCell::new(Arc::new(snap))),
            sequence: state.sequence,
            factor,
            factor_valid: state.factor_valid,
            factor_policy: state.factor_policy,
            updates_since_refactor: state.updates_since_refactor,
            factor_updates: state.factor_updates,
            factor_refactors: state.factor_refactors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DriftPolicy;
    use ingrass_linalg::{pcg, CgOptions};

    fn ring_with_chords(n: usize) -> Graph {
        let mut edges: Vec<(usize, usize, f64)> = (0..n)
            .map(|i| (i, (i + 1) % n, 1.0 + (i % 3) as f64))
            .collect();
        for i in 0..n / 2 {
            edges.push((i, i + n / 2, 0.5));
        }
        Graph::from_edges(n, &edges).unwrap()
    }

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn snapshot_types_are_send_and_sync() {
        assert_send_sync::<SparsifierSnapshot>();
        assert_send_sync::<SnapshotReader>();
        assert_send_sync::<Arc<SparsifierSnapshot>>();
    }

    #[test]
    fn setup_publishes_a_consistent_initial_snapshot() {
        let h0 = ring_with_chords(20);
        let engine = SnapshotEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let snap = engine.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.version(), 0);
        assert_eq!(snap.sequence(), 1);
        assert_eq!(snap.num_nodes(), 20);
        assert_eq!(snap.graph().num_edges(), h0.num_edges());
        assert!(snap.verify_checksum());
        let rs = snap.resistance_summary();
        assert_eq!(rs.edges, h0.num_edges());
        assert!((rs.total_weight - h0.total_weight()).abs() < 1e-9);
        assert!(rs.total_distortion > 0.0);
        assert!(rs.max_edge_distortion <= rs.total_distortion);
    }

    #[test]
    fn snapshot_factor_is_exact_for_its_own_laplacian() {
        let h0 = ring_with_chords(24);
        let engine = SnapshotEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let snap = engine.snapshot();
        let n = snap.num_nodes();
        let mut b = vec![0.0; n];
        b[1] = 1.0;
        b[n - 2] = -1.0;
        let ones = vec![1.0; n];
        let mut x = vec![0.0; n];
        let res = pcg(
            snap.laplacian(),
            &b,
            &mut x,
            snap.preconditioner(),
            Some(&ones),
            &CgOptions::default(),
        );
        assert!(res.converged);
        assert!(res.iterations <= 2, "exact factor took {}", res.iterations);
    }

    #[test]
    fn effective_resistance_matches_series_path() {
        // A path of three unit edges: R(0,3) = 3, R(0,1) = 1.
        let h0 = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let engine = SnapshotEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let snap = engine.snapshot();
        assert!((snap.effective_resistance(0.into(), 3.into()) - 3.0).abs() < 1e-9);
        assert!((snap.effective_resistance(0.into(), 1.into()) - 1.0).abs() < 1e-9);
        assert_eq!(snap.effective_resistance(2.into(), 2.into()), 0.0);
        assert!(snap.resistance_bound(0.into(), 3.into()) >= 3.0 - 1e-9);
    }

    #[test]
    fn apply_batch_publishes_and_old_snapshots_survive() {
        let h0 = ring_with_chords(20);
        let mut engine = SnapshotEngine::setup(
            &h0,
            &SetupConfig::default().with_drift(DriftPolicy::never()),
        )
        .unwrap();
        let reader = engine.reader();
        let old = reader.current();
        let old_edges = old.graph().num_edges();
        let old_checksum = old.checksum();

        let report = engine
            .apply_batch(
                &[UpdateOp::Insert {
                    u: 0,
                    v: 7,
                    weight: 2.0,
                }],
                &UpdateConfig {
                    target_condition: 4.0,
                    ..Default::default()
                },
            )
            .unwrap();
        let publish = report.publish.expect("non-empty batch must publish");
        assert_eq!(publish.version, engine.engine().version());
        assert!(publish.publish_seconds >= 0.0);
        assert!(publish.factor_nnz > 0);

        let new = reader.current();
        assert!(new.version() > old.version());
        assert!(new.sequence() > old.sequence());
        // The old view is untouched.
        assert_eq!(old.graph().num_edges(), old_edges);
        assert_eq!(old.checksum(), old_checksum);
        assert!(old.verify_checksum());
    }

    #[test]
    fn empty_batch_does_not_publish() {
        let h0 = ring_with_chords(16);
        let mut engine = SnapshotEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let before = engine.snapshot();
        let report = engine.apply_batch(&[], &UpdateConfig::default()).unwrap();
        assert!(report.publish.is_none());
        assert!(Arc::ptr_eq(&before, &engine.snapshot()));
        assert_eq!(engine.publishes(), 1);
    }

    #[test]
    fn resetup_bumps_the_epoch_tag_and_old_epoch_stays_usable() {
        let h0 = ring_with_chords(20);
        let mut engine = SnapshotEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let old = engine.snapshot();
        let publish = engine.resetup().unwrap();
        assert_eq!(publish.epoch, 1);
        let new = engine.snapshot();
        assert_eq!(new.epoch(), 1);
        assert_eq!(old.epoch(), 0);
        // The old epoch's factor still answers exactly for its own state.
        let r = old.effective_resistance(0.into(), 5.into());
        assert!(r.is_finite() && r > 0.0);
        assert!(old.verify_checksum());
    }

    #[test]
    fn dropped_snapshots_are_freed_once_unpublished() {
        let h0 = ring_with_chords(16);
        let mut engine = SnapshotEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let old = engine.snapshot();
        let weak = Arc::downgrade(&old);
        drop(old);
        // Still alive: the cell holds it as the current snapshot.
        assert!(weak.upgrade().is_some());
        engine
            .apply_batch(
                &[UpdateOp::Insert {
                    u: 0,
                    v: 5,
                    weight: 1.0,
                }],
                &UpdateConfig::default(),
            )
            .unwrap();
        // Replaced and unreferenced: the factor is gone with it.
        assert!(weak.upgrade().is_none());
    }

    #[test]
    fn reader_handles_work_across_threads() {
        let h0 = ring_with_chords(20);
        let mut engine = SnapshotEngine::setup(&h0, &SetupConfig::default()).unwrap();
        let reader = engine.reader();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let r = reader.clone();
                    s.spawn(move || {
                        let snap = r.current();
                        assert!(snap.verify_checksum());
                        snap.version()
                    })
                })
                .collect();
            engine
                .apply_batch(
                    &[UpdateOp::Insert {
                        u: 1,
                        v: 9,
                        weight: 0.3,
                    }],
                    &UpdateConfig::default(),
                )
                .unwrap();
            for h in handles {
                let v = h.join().unwrap();
                assert!(v <= engine.engine().version());
            }
        });
    }
}
