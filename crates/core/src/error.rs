use std::error::Error;
use std::fmt;

/// Errors produced by the inGRASS engine.
#[derive(Debug, Clone, PartialEq)]
pub enum InGrassError {
    /// The initial sparsifier is unusable (empty or disconnected) — the
    /// multilevel decomposition requires a connected `H(0)`.
    BadSparsifier(String),
    /// A configuration value is outside its domain.
    InvalidConfig(String),
    /// A graph operation failed during an update.
    Graph(String),
}

impl fmt::Display for InGrassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InGrassError::BadSparsifier(msg) => write!(f, "bad initial sparsifier: {msg}"),
            InGrassError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            InGrassError::Graph(msg) => write!(f, "graph operation failed: {msg}"),
        }
    }
}

impl Error for InGrassError {}

impl From<ingrass_graph::GraphError> for InGrassError {
    fn from(e: ingrass_graph::GraphError) -> Self {
        InGrassError::Graph(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = InGrassError::InvalidConfig("target condition must be ≥ 2".into());
        assert!(e.to_string().contains("configuration"));
        let ge = ingrass_graph::GraphError::Empty;
        let e: InGrassError = ge.into();
        assert!(matches!(e, InGrassError::Graph(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<InGrassError>();
    }
}
