use std::error::Error;
use std::fmt;

/// Errors produced by the inGRASS engine.
#[derive(Debug, Clone, PartialEq)]
pub enum InGrassError {
    /// The initial sparsifier is unusable (empty or disconnected) — the
    /// multilevel decomposition requires a connected `H(0)`.
    BadSparsifier(String),
    /// A configuration value is outside its domain.
    InvalidConfig(String),
    /// A graph operation failed during an update.
    Graph(String),
}

impl fmt::Display for InGrassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InGrassError::BadSparsifier(msg) => write!(f, "bad initial sparsifier: {msg}"),
            InGrassError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            InGrassError::Graph(msg) => write!(f, "graph operation failed: {msg}"),
        }
    }
}

impl Error for InGrassError {}

impl From<ingrass_graph::GraphError> for InGrassError {
    fn from(e: ingrass_graph::GraphError) -> Self {
        InGrassError::Graph(e.to_string())
    }
}

/// The workspace-level error: one enum the facade and the persistence
/// layer surface, instead of leaking a per-crate error type from every
/// call. `From` impls fold the substrate errors in, so `?` works across
/// crate boundaries:
///
/// * engine errors ([`InGrassError`]) → [`IngrassError::Engine`];
/// * graph errors ([`ingrass_graph::GraphError`]) → [`IngrassError::Graph`];
/// * linear-algebra errors ([`ingrass_linalg::LinalgError`]) →
///   [`IngrassError::Linalg`] (the resistance estimators have no error
///   enum of their own — their failures surface as `LinalgError` or are
///   folded into [`InGrassError::BadSparsifier`] at setup);
/// * solve-service errors convert via the `From` impl in `ingrass-solve`
///   (→ [`IngrassError::Solve`]), and store errors via the impl in
///   `ingrass-store` (→ [`IngrassError::Store`]) — the orphan rule puts
///   those impls next to the error types they consume.
#[derive(Debug, Clone, PartialEq)]
pub enum IngrassError {
    /// An engine (setup/update/publish) error.
    Engine(InGrassError),
    /// A graph-substrate error.
    Graph(ingrass_graph::GraphError),
    /// A linear-algebra error (factorization, solver, dimension).
    Linalg(ingrass_linalg::LinalgError),
    /// A solve-service error (stringified; constructed by `ingrass-solve`).
    Solve(String),
    /// A persistence error (stringified; constructed by `ingrass-store`).
    Store(String),
    /// A configuration value outside its domain, caught at construction.
    Config(String),
}

impl fmt::Display for IngrassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngrassError::Engine(e) => write!(f, "engine: {e}"),
            IngrassError::Graph(e) => write!(f, "graph: {e}"),
            IngrassError::Linalg(e) => write!(f, "linalg: {e}"),
            IngrassError::Solve(msg) => write!(f, "solve: {msg}"),
            IngrassError::Store(msg) => write!(f, "store: {msg}"),
            IngrassError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for IngrassError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IngrassError::Engine(e) => Some(e),
            IngrassError::Graph(e) => Some(e),
            IngrassError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InGrassError> for IngrassError {
    fn from(e: InGrassError) -> Self {
        IngrassError::Engine(e)
    }
}

impl From<ingrass_graph::GraphError> for IngrassError {
    fn from(e: ingrass_graph::GraphError) -> Self {
        IngrassError::Graph(e)
    }
}

impl From<ingrass_linalg::LinalgError> for IngrassError {
    fn from(e: ingrass_linalg::LinalgError) -> Self {
        IngrassError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = InGrassError::InvalidConfig("target condition must be ≥ 2".into());
        assert!(e.to_string().contains("configuration"));
        let ge = ingrass_graph::GraphError::Empty;
        let e: InGrassError = ge.into();
        assert!(matches!(e, InGrassError::Graph(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<InGrassError>();
        assert_send_sync::<IngrassError>();
    }

    #[test]
    fn workspace_error_folds_substrate_errors() {
        let e: IngrassError = InGrassError::InvalidConfig("x".into()).into();
        assert!(matches!(e, IngrassError::Engine(_)));
        assert!(e.to_string().contains("engine"));
        let e: IngrassError = ingrass_graph::GraphError::Empty.into();
        assert!(matches!(e, IngrassError::Graph(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e: IngrassError = ingrass_linalg::LinalgError::InvalidArgument("bad".into()).into();
        assert!(matches!(e, IngrassError::Linalg(_)));
        assert!(e.to_string().contains("linalg"));
    }
}
