//! Kruskal spanning trees.

use crate::dsu::DisjointSets;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::NodeId;
use crate::tree::{Tree, TreeResult};
use crate::Result;
use std::collections::VecDeque;

/// Objective for [`kruskal_tree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeObjective {
    /// Maximise total edge weight — keeps high-conductance edges, the
    /// standard backbone for GRASS-style sparsifiers.
    MaxWeight,
    /// Minimise total edge weight.
    MinWeight,
}

/// Builds a rooted [`Tree`] over the tree-edge mask via BFS from `root`.
///
/// Shared by every spanning-tree construction in this crate.
pub(crate) fn rooted_from_mask(g: &Graph, in_tree: &[bool], root: NodeId) -> Result<Tree> {
    let n = g.num_nodes();
    if n == 0 {
        return Err(GraphError::Empty);
    }
    let mut parent: Vec<u32> = (0..n as u32).collect();
    let mut parent_weight = vec![0.0; n];
    let mut seen = vec![false; n];
    seen[root.index()] = true;
    let mut queue = VecDeque::new();
    queue.push_back(root);
    let mut visited = 1usize;
    while let Some(u) = queue.pop_front() {
        for a in g.neighbors(u) {
            if in_tree[a.edge.index()] && !seen[a.to.index()] {
                seen[a.to.index()] = true;
                parent[a.to.index()] = u.raw();
                parent_weight[a.to.index()] = a.weight;
                visited += 1;
                queue.push_back(a.to);
            }
        }
    }
    if visited != n {
        // Count components for the error message.
        let (components, _) = crate::traversal::connected_components(g);
        return Err(GraphError::Disconnected {
            components: components.max(2),
        });
    }
    Tree::from_parent(root, parent, parent_weight)
}

/// Kruskal's algorithm: a spanning tree optimising `objective`.
///
/// Runs in `O(m log m)`. Ties are broken by edge id, so the result is
/// deterministic.
///
/// # Errors
/// [`GraphError::Empty`] for a graph without nodes;
/// [`GraphError::Disconnected`] if no spanning tree exists.
pub fn kruskal_tree(g: &Graph, objective: TreeObjective) -> Result<TreeResult> {
    if g.num_nodes() == 0 {
        return Err(GraphError::Empty);
    }
    let mut order: Vec<usize> = (0..g.num_edges()).collect();
    match objective {
        TreeObjective::MaxWeight => {
            order.sort_by(|&a, &b| {
                g.edges()[b]
                    .weight
                    .partial_cmp(&g.edges()[a].weight)
                    .unwrap()
                    .then(a.cmp(&b))
            });
        }
        TreeObjective::MinWeight => {
            order.sort_by(|&a, &b| {
                g.edges()[a]
                    .weight
                    .partial_cmp(&g.edges()[b].weight)
                    .unwrap()
                    .then(a.cmp(&b))
            });
        }
    }
    let mut dsu = DisjointSets::new(g.num_nodes());
    let mut in_tree = vec![false; g.num_edges()];
    let mut picked = 0usize;
    for e in order {
        let edge = &g.edges()[e];
        if dsu.union(edge.u.index(), edge.v.index()) {
            in_tree[e] = true;
            picked += 1;
            if picked + 1 == g.num_nodes() {
                break;
            }
        }
    }
    if picked + 1 != g.num_nodes() {
        return Err(GraphError::Disconnected {
            components: dsu.num_sets(),
        });
    }
    let tree = rooted_from_mask(g, &in_tree, NodeId::new(0))?;
    Ok(TreeResult { tree, in_tree })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn max_weight_tree_prefers_heavy_edges() {
        // Square with a heavy diagonal.
        let g = Graph::from_edges(
            4,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 0, 1.0),
                (0, 2, 10.0),
            ],
        )
        .unwrap();
        let t = kruskal_tree(&g, TreeObjective::MaxWeight).unwrap();
        // Heavy diagonal must be in the tree (ids follow canonical order,
        // so look it up by weight).
        let diag = g.edges().iter().position(|e| e.weight == 10.0).unwrap();
        assert!(t.in_tree[diag]);
        assert_eq!(t.in_tree.iter().filter(|&&b| b).count(), 3);
        assert_eq!(t.off_tree_edges().len(), 2);
    }

    #[test]
    fn min_weight_tree_avoids_heavy_edges() {
        let g = Graph::from_edges(
            4,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 0, 1.0),
                (0, 2, 10.0),
            ],
        )
        .unwrap();
        let t = kruskal_tree(&g, TreeObjective::MinWeight).unwrap();
        let diag = g.edges().iter().position(|e| e.weight == 10.0).unwrap();
        assert!(!t.in_tree[diag]);
    }

    #[test]
    fn disconnected_graph_errors() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        assert!(matches!(
            kruskal_tree(&g, TreeObjective::MaxWeight),
            Err(GraphError::Disconnected { .. })
        ));
    }

    #[test]
    fn single_node_graph_gives_trivial_tree() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let t = kruskal_tree(&g, TreeObjective::MaxWeight).unwrap();
        assert_eq!(t.tree.num_nodes(), 1);
        assert_eq!(t.tree.edges().count(), 0);
    }

    proptest! {
        #[test]
        fn prop_kruskal_yields_spanning_tree(
            extra in proptest::collection::vec((0usize..15, 0usize..15, 0.1f64..10.0), 0..40),
        ) {
            // Guarantee connectivity with a path, then add random edges.
            let mut edges: Vec<(usize, usize, f64)> =
                (0..14).map(|i| (i, i + 1, 1.0 + i as f64 * 0.1)).collect();
            edges.extend(extra);
            let g = Graph::from_edges(15, &edges).unwrap();
            let t = kruskal_tree(&g, TreeObjective::MaxWeight).unwrap();
            prop_assert_eq!(t.in_tree.iter().filter(|&&b| b).count(), 14);
            prop_assert_eq!(t.tree.num_nodes(), 15);
            // Every tree edge must exist in the graph with matching weight.
            for (u, p, w) in t.tree.edges() {
                prop_assert_eq!(g.edge_weight(u, p), Some(w));
            }
        }

        #[test]
        fn prop_max_tree_weight_geq_min_tree_weight(
            extra in proptest::collection::vec((0usize..10, 0usize..10, 0.1f64..10.0), 0..30),
        ) {
            let mut edges: Vec<(usize, usize, f64)> =
                (0..9).map(|i| (i, i + 1, 1.0)).collect();
            edges.extend(extra);
            let g = Graph::from_edges(10, &edges).unwrap();
            let tmax = kruskal_tree(&g, TreeObjective::MaxWeight).unwrap();
            let tmin = kruskal_tree(&g, TreeObjective::MinWeight).unwrap();
            let wmax: f64 = tmax.tree.edges().map(|(_, _, w)| w).sum();
            let wmin: f64 = tmin.tree.edges().map(|(_, _, w)| w).sum();
            prop_assert!(wmax >= wmin - 1e-12);
        }
    }
}
