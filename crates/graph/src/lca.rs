//! Lowest common ancestor via Euler tour + sparse-table RMQ.

use crate::ids::NodeId;
use crate::tree::Tree;

/// Constant-time lowest-common-ancestor queries on a [`Tree`].
///
/// Preprocessing is `O(n log n)` (Euler tour of length `2n − 1` plus a
/// sparse table of range-minimum-by-depth); each query is `O(1)`. This is
/// the classic reduction used to evaluate tree-path resistances for all
/// off-tree edges in near-linear total time.
///
/// # Example
/// ```
/// use ingrass_graph::{Tree, LcaIndex, NodeId};
/// // Root 0; 1 and 2 are children of 0; 3 is a child of 1.
/// let t = Tree::from_parent(0.into(), vec![0, 0, 0, 1], vec![0.0, 1.0, 1.0, 1.0]).unwrap();
/// let lca = LcaIndex::new(&t);
/// assert_eq!(lca.lca(3.into(), 2.into()), NodeId::new(0));
/// assert_eq!(lca.lca(3.into(), 1.into()), NodeId::new(1));
/// ```
#[derive(Debug, Clone)]
pub struct LcaIndex {
    /// Euler tour: node at each tour position.
    euler: Vec<u32>,
    /// Depth of the node at each tour position.
    euler_depth: Vec<u32>,
    /// First tour position of each node.
    first: Vec<u32>,
    /// Sparse table: `table[k][i]` = position of the min-depth entry in
    /// `euler[i .. i + 2^k]`.
    table: Vec<Vec<u32>>,
}

impl LcaIndex {
    /// Builds the index for `tree`.
    pub fn new(tree: &Tree) -> Self {
        let n = tree.num_nodes();
        let mut euler = Vec::with_capacity(2 * n);
        let mut euler_depth = Vec::with_capacity(2 * n);
        let mut first = vec![u32::MAX; n];

        // Iterative Euler tour: push (node, next-child-index) frames.
        let root = tree.root();
        let mut stack: Vec<(u32, usize)> = vec![(root.raw(), 0)];
        while let Some(&mut (u, ref mut ci)) = stack.last_mut() {
            let node = NodeId::from(u);
            if *ci == 0 {
                first[u as usize] = euler.len() as u32;
            }
            euler.push(u);
            euler_depth.push(tree.depth(node));
            let kids = tree.children(node);
            if *ci < kids.len() {
                let c = kids[*ci];
                *ci += 1;
                stack.push((c, 0));
            } else {
                stack.pop();
                // Re-visit the parent when returning (handled by the parent's
                // next loop iteration pushing it again via euler.push above).
            }
        }

        // Sparse table over euler_depth.
        let m = euler.len();
        let levels = (usize::BITS - m.leading_zeros()) as usize; // ⌈log2 m⌉ + 1
        let mut table: Vec<Vec<u32>> = Vec::with_capacity(levels);
        table.push((0..m as u32).collect());
        let mut k = 1usize;
        while (1 << k) <= m {
            let half = 1 << (k - 1);
            let prev = &table[k - 1];
            let mut row = Vec::with_capacity(m - (1 << k) + 1);
            for i in 0..=(m - (1 << k)) {
                let a = prev[i];
                let b = prev[i + half];
                row.push(if euler_depth[a as usize] <= euler_depth[b as usize] {
                    a
                } else {
                    b
                });
            }
            table.push(row);
            k += 1;
        }

        LcaIndex {
            euler,
            euler_depth,
            first,
            table,
        }
    }

    /// The lowest common ancestor of `u` and `v`.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of bounds.
    pub fn lca(&self, u: NodeId, v: NodeId) -> NodeId {
        let (mut a, mut b) = (
            self.first[u.index()] as usize,
            self.first[v.index()] as usize,
        );
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let len = b - a + 1;
        let k = (usize::BITS - 1 - len.leading_zeros()) as usize; // ⌊log2 len⌋
        let x = self.table[k][a];
        let y = self.table[k][b + 1 - (1 << k)];
        let pos = if self.euler_depth[x as usize] <= self.euler_depth[y as usize] {
            x
        } else {
            y
        };
        NodeId::from(self.euler[pos as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Naive LCA by walking up parents.
    fn naive_lca(t: &Tree, mut u: NodeId, mut v: NodeId) -> NodeId {
        while t.depth(u) > t.depth(v) {
            u = t.parent(u).unwrap();
        }
        while t.depth(v) > t.depth(u) {
            v = t.parent(v).unwrap();
        }
        while u != v {
            u = t.parent(u).unwrap();
            v = t.parent(v).unwrap();
        }
        u
    }

    fn chain(n: usize) -> Tree {
        let parent: Vec<u32> = (0..n)
            .map(|i| if i == 0 { 0 } else { i as u32 - 1 })
            .collect();
        let weight: Vec<f64> = vec![1.0; n];
        Tree::from_parent(0.into(), parent, weight).unwrap()
    }

    #[test]
    fn lca_on_chain() {
        let t = chain(10);
        let idx = LcaIndex::new(&t);
        assert_eq!(idx.lca(9.into(), 4.into()), NodeId::new(4));
        assert_eq!(idx.lca(3.into(), 3.into()), NodeId::new(3));
        assert_eq!(idx.lca(0.into(), 9.into()), NodeId::new(0));
    }

    #[test]
    fn lca_on_balanced_binary_tree() {
        // Nodes 0..7: node i has parent (i-1)/2.
        let parent: Vec<u32> = (0..7)
            .map(|i: u32| if i == 0 { 0 } else { (i - 1) / 2 })
            .collect();
        let t = Tree::from_parent(0.into(), parent, vec![1.0; 7]).unwrap();
        let idx = LcaIndex::new(&t);
        assert_eq!(idx.lca(3.into(), 4.into()), NodeId::new(1));
        assert_eq!(idx.lca(3.into(), 5.into()), NodeId::new(0));
        assert_eq!(idx.lca(5.into(), 6.into()), NodeId::new(2));
        assert_eq!(idx.lca(1.into(), 3.into()), NodeId::new(1));
    }

    #[test]
    fn single_node_tree() {
        let t = Tree::from_parent(0.into(), vec![0], vec![0.0]).unwrap();
        let idx = LcaIndex::new(&t);
        assert_eq!(idx.lca(0.into(), 0.into()), NodeId::new(0));
    }

    proptest! {
        #[test]
        fn prop_matches_naive_on_random_trees(
            shape in proptest::collection::vec(0usize..1000, 2..64),
            queries in proptest::collection::vec((0usize..64, 0usize..64), 1..50),
        ) {
            // parent[i] = random node < i gives a valid random tree.
            let n = shape.len() + 1;
            let mut parent = vec![0u32];
            for (i, r) in shape.iter().enumerate() {
                parent.push((r % (i + 1)) as u32);
            }
            let t = Tree::from_parent(0.into(), parent, vec![1.0; n]).unwrap();
            let idx = LcaIndex::new(&t);
            for (a, b) in queries {
                let (u, v) = (NodeId::new(a % n), NodeId::new(b % n));
                prop_assert_eq!(idx.lca(u, v), naive_lca(&t, u, v));
            }
        }
    }
}
