//! Breadth-first traversal and connectivity.

use crate::graph::Graph;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// Breadth-first order of the nodes reachable from `start`.
///
/// # Panics
/// Panics if `start` is out of bounds.
pub fn bfs_order(g: &Graph, start: NodeId) -> Vec<NodeId> {
    let n = g.num_nodes();
    assert!(start.index() < n, "start node out of bounds");
    let mut seen = vec![false; n];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for a in g.neighbors(u) {
            if !seen[a.to.index()] {
                seen[a.to.index()] = true;
                queue.push_back(a.to);
            }
        }
    }
    order
}

/// Connected components: returns `(count, label per node)`.
///
/// Labels are dense in `0..count`, assigned in order of first discovery.
pub fn connected_components(g: &Graph) -> (usize, Vec<u32>) {
    let n = g.num_nodes();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for s in 0..n {
        if label[s] != u32::MAX {
            continue;
        }
        label[s] = count;
        queue.push_back(NodeId::new(s));
        while let Some(u) = queue.pop_front() {
            for a in g.neighbors(u) {
                let t = a.to.index();
                if label[t] == u32::MAX {
                    label[t] = count;
                    queue.push_back(a.to);
                }
            }
        }
        count += 1;
    }
    (count as usize, label)
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    g.num_nodes() == 0 || connected_components(g).0 == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_visits_reachable_nodes_level_by_level() {
        // Path 0-1-2-3.
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let order = bfs_order(&g, 0.into());
        assert_eq!(order, vec![0.into(), 1.into(), 2.into(), 3.into()]);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = Graph::from_edges(5, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let (count, labels) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[4]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn connected_cases() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        assert!(is_connected(&g));
        let empty = Graph::from_edges(0, &[]).unwrap();
        assert!(is_connected(&empty));
        let single = Graph::from_edges(1, &[]).unwrap();
        assert!(is_connected(&single));
    }
}
