//! Cluster contraction (quotient graphs).

use crate::graph::Graph;
use crate::ids::EdgeId;
use std::collections::HashMap;

/// Contracts `g` under a cluster assignment, producing the quotient graph.
///
/// * Nodes of the quotient are clusters `0..num_clusters`.
/// * Intra-cluster edges disappear.
/// * Parallel inter-cluster edges are combined by **summing weights** — the
///   parallel-conductance law, which keeps the quotient Laplacian equal to
///   the restriction of the original Laplacian to cluster-constant vectors.
///
/// Returns the quotient graph and, for each quotient edge, the id of a
/// *representative* original edge (the heaviest edge between the two
/// clusters). The representative map is what lets the low-stretch tree
/// recursion and the GRASS baseline lift quotient-level decisions back to
/// original edges.
///
/// # Panics
/// Panics if `cluster_of.len() != g.num_nodes()` or a label is
/// `≥ num_clusters`.
///
/// # Example
/// ```
/// use ingrass_graph::{Graph, quotient_graph};
/// // Path 0-1-2-3; clusters {0,1} and {2,3}.
/// let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]).unwrap();
/// let (q, reps) = quotient_graph(&g, &[0, 0, 1, 1], 2);
/// assert_eq!(q.num_nodes(), 2);
/// assert_eq!(q.num_edges(), 1);
/// assert_eq!(q.edges()[0].weight, 2.0);           // only the 1-2 edge crosses
/// assert_eq!(reps[0].index(), 1);                  // representative is edge (1,2)
/// ```
pub fn quotient_graph(g: &Graph, cluster_of: &[u32], num_clusters: usize) -> (Graph, Vec<EdgeId>) {
    assert_eq!(
        cluster_of.len(),
        g.num_nodes(),
        "cluster assignment length mismatch"
    );
    // (cu, cv) -> (summed weight, representative edge id, representative weight)
    type MergedEdge = (f64, u32, f64);
    let mut acc: HashMap<(u32, u32), MergedEdge> = HashMap::new();
    for (i, e) in g.edges().iter().enumerate() {
        let (mut cu, mut cv) = (cluster_of[e.u.index()], cluster_of[e.v.index()]);
        assert!(
            (cu as usize) < num_clusters && (cv as usize) < num_clusters,
            "cluster label out of range"
        );
        if cu == cv {
            continue;
        }
        if cu > cv {
            std::mem::swap(&mut cu, &mut cv);
        }
        let entry = acc.entry((cu, cv)).or_insert((0.0, i as u32, f64::MIN));
        entry.0 += e.weight;
        if e.weight > entry.2 {
            entry.1 = i as u32;
            entry.2 = e.weight;
        }
    }
    let mut items: Vec<((u32, u32), MergedEdge)> = acc.into_iter().collect();
    items.sort_unstable_by_key(|&(k, _)| k);
    let edges: Vec<(usize, usize, f64)> = items
        .iter()
        .map(|&((a, b), (w, _, _))| (a as usize, b as usize, w))
        .collect();
    let reps: Vec<EdgeId> = items
        .iter()
        .map(|&(_, (_, rep, _))| EdgeId::from(rep))
        .collect();
    let q =
        Graph::from_edges(num_clusters, &edges).expect("quotient edges are valid by construction");
    // `Graph` sorts canonical edges by (u, v); `items` is sorted the same
    // way and contains no duplicates, so ids line up.
    debug_assert_eq!(q.num_edges(), reps.len());
    (q, reps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_edges_sum_and_representative_is_heaviest() {
        // Two clusters joined by two edges (weights 1 and 5).
        let g =
            Graph::from_edges(4, &[(0, 1, 9.0), (2, 3, 9.0), (0, 2, 1.0), (1, 3, 5.0)]).unwrap();
        let (q, reps) = quotient_graph(&g, &[0, 0, 1, 1], 2);
        assert_eq!(q.num_edges(), 1);
        assert_eq!(q.edges()[0].weight, 6.0);
        // Representative must be the (1,3) edge of weight 5.
        let rep = g.edge(reps[0]);
        assert_eq!(rep.weight, 5.0);
    }

    #[test]
    fn identity_clustering_reproduces_graph() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)]).unwrap();
        let labels: Vec<u32> = (0..3).collect();
        let (q, reps) = quotient_graph(&g, &labels, 3);
        assert_eq!(q.num_edges(), g.num_edges());
        for (i, r) in reps.iter().enumerate() {
            assert_eq!(q.edges()[i].weight, g.edge(*r).weight);
        }
    }

    #[test]
    fn all_in_one_cluster_gives_empty_quotient() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)]).unwrap();
        let (q, reps) = quotient_graph(&g, &[0, 0, 0], 1);
        assert_eq!(q.num_nodes(), 1);
        assert_eq!(q.num_edges(), 0);
        assert!(reps.is_empty());
    }

    #[test]
    fn quotient_laplacian_preserves_cluster_constant_quadratic_form() {
        let g = Graph::from_edges(
            5,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 0.5),
                (3, 4, 1.5),
                (0, 4, 3.0),
            ],
        )
        .unwrap();
        let labels = [0u32, 0, 1, 1, 2];
        let (q, _) = quotient_graph(&g, &labels, 3);
        // x constant on clusters: lift y (on clusters) to x (on nodes).
        let y = [1.0, -2.0, 0.5];
        let x: Vec<f64> = labels.iter().map(|&c| y[c as usize]).collect();
        let lg = g.laplacian();
        let lq = q.laplacian();
        assert!((lg.quadratic_form(&x) - lq.quadratic_form(&y)).abs() < 1e-12);
    }
}
