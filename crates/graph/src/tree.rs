//! Rooted spanning trees.

use crate::error::GraphError;
use crate::ids::NodeId;
use crate::Result;

/// A rooted spanning tree over nodes `0..n`, stored as a parent array.
///
/// Produced by [`crate::kruskal_tree`], [`crate::effective_weight_tree`] and
/// [`crate::low_stretch_tree`]; consumed by the LCA index, the tree-path
/// resistance oracle and the tree Laplacian solver.
///
/// Invariants (validated at construction): exactly one root with
/// `parent[root] == root`, every node reaches the root, and every non-root
/// parent edge has positive weight.
#[derive(Debug, Clone, PartialEq)]
pub struct Tree {
    root: NodeId,
    parent: Vec<u32>,
    parent_weight: Vec<f64>,
    preorder: Vec<u32>,
    depth: Vec<u32>,
    child_ptr: Vec<usize>,
    children: Vec<u32>,
}

impl Tree {
    /// Builds a tree from a parent array.
    ///
    /// `parent[u]` is the parent of `u` (with `parent[root] == root`), and
    /// `parent_weight[u]` the weight of the edge `{u, parent[u]}` (ignored
    /// for the root).
    ///
    /// # Errors
    /// [`GraphError::MalformedTree`] if there is not exactly one root, if a
    /// cycle is present, if the arrays disagree in length, or if an edge
    /// weight is non-positive.
    pub fn from_parent(root: NodeId, parent: Vec<u32>, parent_weight: Vec<f64>) -> Result<Self> {
        let n = parent.len();
        if parent_weight.len() != n {
            return Err(GraphError::MalformedTree(format!(
                "parent ({n}) and weight ({}) arrays differ in length",
                parent_weight.len()
            )));
        }
        if n == 0 {
            return Err(GraphError::Empty);
        }
        if root.index() >= n {
            return Err(GraphError::NodeOutOfBounds {
                node: root.index(),
                num_nodes: n,
            });
        }
        if parent[root.index()] != root.raw() {
            return Err(GraphError::MalformedTree(
                "parent[root] must equal root".into(),
            ));
        }
        for (u, &p) in parent.iter().enumerate() {
            if p as usize >= n {
                return Err(GraphError::NodeOutOfBounds {
                    node: p as usize,
                    num_nodes: n,
                });
            }
            if u != root.index() && p as usize == u {
                return Err(GraphError::MalformedTree(format!(
                    "node {u} is its own parent but is not the root"
                )));
            }
            if u != root.index() && !(parent_weight[u] > 0.0 && parent_weight[u].is_finite()) {
                return Err(GraphError::MalformedTree(format!(
                    "edge to parent of node {u} has invalid weight {}",
                    parent_weight[u]
                )));
            }
        }

        // Children CSR.
        let mut counts = vec![0usize; n + 1];
        for (u, &p) in parent.iter().enumerate() {
            if u != root.index() {
                counts[p as usize + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut children = vec![0u32; n - 1];
        let mut cursor = counts.clone();
        for (u, &p) in parent.iter().enumerate() {
            if u != root.index() {
                children[cursor[p as usize]] = u as u32;
                cursor[p as usize] += 1;
            }
        }

        // Preorder + depth via explicit stack; also detects unreachable nodes
        // (which imply cycles among non-root nodes).
        let mut preorder = Vec::with_capacity(n);
        let mut depth = vec![u32::MAX; n];
        let mut stack = vec![root.raw()];
        depth[root.index()] = 0;
        while let Some(u) = stack.pop() {
            preorder.push(u);
            let (lo, hi) = (counts[u as usize], counts[u as usize + 1]);
            for &c in &children[lo..hi] {
                depth[c as usize] = depth[u as usize] + 1;
                stack.push(c);
            }
        }
        if preorder.len() != n {
            return Err(GraphError::MalformedTree(format!(
                "only {} of {n} nodes reachable from the root (cycle or forest)",
                preorder.len()
            )));
        }

        Ok(Tree {
            root,
            parent,
            parent_weight,
            preorder,
            depth,
            child_ptr: counts,
            children,
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The parent of `u`, or `None` for the root.
    #[inline]
    pub fn parent(&self, u: NodeId) -> Option<NodeId> {
        if u == self.root {
            None
        } else {
            Some(NodeId::from(self.parent[u.index()]))
        }
    }

    /// Weight of the edge from `u` to its parent.
    ///
    /// # Panics
    /// Panics if `u` is the root.
    #[inline]
    pub fn parent_weight(&self, u: NodeId) -> f64 {
        assert!(u != self.root, "the root has no parent edge");
        self.parent_weight[u.index()]
    }

    /// Depth of `u` (root has depth 0).
    #[inline]
    pub fn depth(&self, u: NodeId) -> u32 {
        self.depth[u.index()]
    }

    /// Nodes in preorder: every parent precedes its children.
    #[inline]
    pub fn preorder(&self) -> &[u32] {
        &self.preorder
    }

    /// The children of `u`.
    #[inline]
    pub fn children(&self, u: NodeId) -> &[u32] {
        &self.children[self.child_ptr[u.index()]..self.child_ptr[u.index() + 1]]
    }

    /// Iterator over the `n − 1` tree edges as `(child, parent, weight)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.num_nodes()).filter_map(move |u| {
            let u = NodeId::new(u);
            self.parent(u)
                .map(|p| (u, p, self.parent_weight[u.index()]))
        })
    }

    /// Sum over nodes of `1/parent_weight` — total tree resistance, a cheap
    /// sanity statistic used in tests and reports.
    pub fn total_resistance(&self) -> f64 {
        self.edges().map(|(_, _, w)| 1.0 / w).sum()
    }
}

/// A spanning tree together with the per-edge membership mask in the graph
/// it was extracted from.
#[derive(Debug, Clone)]
pub struct TreeResult {
    /// The spanning tree.
    pub tree: Tree,
    /// `in_tree[e]` is `true` iff graph edge `e` is a tree edge.
    pub in_tree: Vec<bool>,
}

impl TreeResult {
    /// Ids of the off-tree edges (complement of the mask).
    pub fn off_tree_edges(&self) -> Vec<crate::ids::EdgeId> {
        self.in_tree
            .iter()
            .enumerate()
            .filter(|(_, &t)| !t)
            .map(|(i, _)| crate::ids::EdgeId::new(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> Tree {
        // Root 0 with children 1, 2, 3.
        Tree::from_parent(0.into(), vec![0, 0, 0, 0], vec![0.0, 1.0, 2.0, 4.0]).unwrap()
    }

    #[test]
    fn star_structure() {
        let t = star();
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.root(), NodeId::new(0));
        assert_eq!(t.parent(0.into()), None);
        assert_eq!(t.parent(2.into()), Some(0.into()));
        assert_eq!(t.parent_weight(3.into()), 4.0);
        assert_eq!(t.depth(0.into()), 0);
        assert_eq!(t.depth(3.into()), 1);
        assert_eq!(t.children(0.into()), &[1, 2, 3]);
        assert_eq!(t.preorder()[0], 0);
        assert_eq!(t.edges().count(), 3);
        assert!((t.total_resistance() - (1.0 + 0.5 + 0.25)).abs() < 1e-15);
    }

    #[test]
    fn preorder_parents_first() {
        // Chain 0 <- 1 <- 2 <- 3.
        let t = Tree::from_parent(0.into(), vec![0, 0, 1, 2], vec![0.0, 1.0, 1.0, 1.0]).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &u) in t.preorder().iter().enumerate() {
                p[u as usize] = i;
            }
            p
        };
        for u in 1..4usize {
            let parent = t.parent(NodeId::new(u)).unwrap();
            assert!(pos[parent.index()] < pos[u]);
        }
    }

    #[test]
    fn rejects_two_roots() {
        let err = Tree::from_parent(0.into(), vec![0, 1], vec![0.0, 0.0]);
        assert!(matches!(err, Err(GraphError::MalformedTree(_))));
    }

    #[test]
    fn rejects_cycle() {
        // 1 and 2 point at each other.
        let err = Tree::from_parent(0.into(), vec![0, 2, 1], vec![0.0, 1.0, 1.0]);
        assert!(matches!(err, Err(GraphError::MalformedTree(_))));
    }

    #[test]
    fn rejects_bad_weight() {
        let err = Tree::from_parent(0.into(), vec![0, 0], vec![0.0, -1.0]);
        assert!(matches!(err, Err(GraphError::MalformedTree(_))));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            Tree::from_parent(0.into(), vec![], vec![]),
            Err(GraphError::Empty)
        ));
    }
}
