use std::error::Error;
use std::fmt;

/// Errors produced by graph construction and algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// The operation requires a connected graph.
    Disconnected {
        /// Number of connected components found.
        components: usize,
    },
    /// The graph has no nodes.
    Empty,
    /// A node id is out of bounds.
    NodeOutOfBounds {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// An edge is invalid (non-positive or non-finite weight, etc.).
    InvalidEdge(String),
    /// A parent array does not describe a valid rooted tree.
    MalformedTree(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Disconnected { components } => {
                write!(f, "graph is disconnected ({components} components)")
            }
            GraphError::Empty => write!(f, "graph has no nodes"),
            GraphError::NodeOutOfBounds { node, num_nodes } => {
                write!(f, "node {node} out of bounds (graph has {num_nodes} nodes)")
            }
            GraphError::InvalidEdge(msg) => write!(f, "invalid edge: {msg}"),
            GraphError::MalformedTree(msg) => write!(f, "malformed tree: {msg}"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_specifics() {
        let e = GraphError::Disconnected { components: 3 };
        assert!(e.to_string().contains('3'));
        let e = GraphError::NodeOutOfBounds {
            node: 9,
            num_nodes: 5,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
