//! The immutable weighted undirected graph.

use crate::error::GraphError;
use crate::ids::{Edge, EdgeId, NodeId};
use crate::Result;
use ingrass_linalg::CsrMatrix;

/// One adjacency entry: the neighbour, the edge weight, and the id of the
/// undirected edge it belongs to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adjacency {
    /// Neighbouring node.
    pub to: NodeId,
    /// Weight of the connecting edge.
    pub weight: f64,
    /// Id of the undirected edge (indexes [`Graph::edges`]).
    pub edge: EdgeId,
}

/// An immutable weighted undirected graph stored in CSR adjacency form.
///
/// Invariants enforced at construction:
/// * all edge weights are positive and finite,
/// * no self-loops (dropped silently — they do not affect the Laplacian),
/// * no parallel edges (coalesced by summing weights, matching the parallel
///   conductance law).
///
/// # Example
/// ```
/// use ingrass_graph::Graph;
/// let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (1, 2, 3.0)]).unwrap();
/// assert_eq!(g.num_edges(), 2);            // parallel edges coalesced
/// assert_eq!(g.edge_weight(1.into(), 2.into()), Some(5.0));
/// assert_eq!(g.weighted_degree(1.into()), 6.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    adj_ptr: Vec<usize>,
    adj: Vec<Adjacency>,
}

impl Graph {
    /// Builds a graph with `n` nodes from `(u, v, weight)` tuples.
    ///
    /// # Errors
    /// [`GraphError::NodeOutOfBounds`] if an endpoint is `≥ n`;
    /// [`GraphError::InvalidEdge`] if a weight is non-positive or non-finite.
    pub fn from_edges(n: usize, edges: &[(usize, usize, f64)]) -> Result<Self> {
        let mut b = GraphBuilder::new(n);
        for &(u, v, w) in edges {
            b.add_edge(u, v, w)?;
        }
        Ok(b.build())
    }

    /// Builds a graph from canonical [`Edge`] values (already validated).
    ///
    /// # Errors
    /// Same conditions as [`Graph::from_edges`].
    pub fn from_edge_list(n: usize, edges: &[Edge]) -> Result<Self> {
        let mut b = GraphBuilder::new(n);
        for e in edges {
            b.add_edge(e.u.index(), e.v.index(), e.weight)?;
        }
        Ok(b.build())
    }

    pub(crate) fn from_canonical_edges(n: usize, mut edges: Vec<Edge>) -> Self {
        // Coalesce duplicates.
        edges.sort_unstable_by_key(|e| (e.u, e.v));
        let mut out: Vec<Edge> = Vec::with_capacity(edges.len());
        for e in edges {
            match out.last_mut() {
                Some(last) if last.u == e.u && last.v == e.v => last.weight += e.weight,
                _ => out.push(e),
            }
        }
        let edges = out;

        let mut deg = vec![0usize; n + 1];
        for e in &edges {
            deg[e.u.index() + 1] += 1;
            deg[e.v.index() + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let mut adj = vec![
            Adjacency {
                to: NodeId::new(0),
                weight: 0.0,
                edge: EdgeId::new(0),
            };
            2 * edges.len()
        ];
        let mut cursor = deg.clone();
        for (i, e) in edges.iter().enumerate() {
            let id = EdgeId::new(i);
            adj[cursor[e.u.index()]] = Adjacency {
                to: e.v,
                weight: e.weight,
                edge: id,
            };
            cursor[e.u.index()] += 1;
            adj[cursor[e.v.index()]] = Adjacency {
                to: e.u,
                weight: e.weight,
                edge: id,
            };
            cursor[e.v.index()] += 1;
        }
        Graph {
            n,
            edges,
            adj_ptr: deg,
            adj,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of (undirected, coalesced) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The canonical edge list; [`EdgeId`] `i` refers to `edges()[i]`.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge with the given id.
    ///
    /// # Panics
    /// Panics if `e` is out of bounds.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// Adjacency list of `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of bounds.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[Adjacency] {
        &self.adj[self.adj_ptr[u.index()]..self.adj_ptr[u.index() + 1]]
    }

    /// Unweighted degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj_ptr[u.index() + 1] - self.adj_ptr[u.index()]
    }

    /// Weighted degree (sum of incident edge weights) of `u`.
    pub fn weighted_degree(&self, u: NodeId) -> f64 {
        self.neighbors(u).iter().map(|a| a.weight).sum()
    }

    /// Weight of the edge `{u, v}`, or `None` if absent.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.neighbors(u)
            .iter()
            .find(|a| a.to == v)
            .map(|a| a.weight)
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Iterator over node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId::new)
    }

    /// The graph Laplacian `L = D − A` as a sparse matrix.
    pub fn laplacian(&self) -> CsrMatrix {
        let mut trip: Vec<(usize, usize, f64)> = Vec::with_capacity(self.n + 2 * self.edges.len());
        for i in 0..self.n {
            let d = self.weighted_degree(NodeId::new(i));
            trip.push((i, i, d));
        }
        for e in &self.edges {
            trip.push((e.u.index(), e.v.index(), -e.weight));
            trip.push((e.v.index(), e.u.index(), -e.weight));
        }
        CsrMatrix::from_triplets(self.n, self.n, &trip)
    }

    /// The weighted adjacency matrix `A` as a sparse matrix.
    pub fn adjacency_matrix(&self) -> CsrMatrix {
        let mut trip: Vec<(usize, usize, f64)> = Vec::with_capacity(2 * self.edges.len());
        for e in &self.edges {
            trip.push((e.u.index(), e.v.index(), e.weight));
            trip.push((e.v.index(), e.u.index(), e.weight));
        }
        CsrMatrix::from_triplets(self.n, self.n, &trip)
    }

    /// A new graph containing only the edges selected by `keep`
    /// (`keep.len() == num_edges()`), over the same node set.
    ///
    /// # Panics
    /// Panics if `keep.len() != num_edges()`.
    pub fn edge_subgraph(&self, keep: &[bool]) -> Graph {
        assert_eq!(keep.len(), self.edges.len(), "edge mask length");
        let edges: Vec<Edge> = self
            .edges
            .iter()
            .zip(keep)
            .filter(|(_, &k)| k)
            .map(|(e, _)| *e)
            .collect();
        Graph::from_canonical_edges(self.n, edges)
    }
}

/// Incremental builder for [`Graph`]; validates and coalesces edges.
///
/// # Example
/// ```
/// use ingrass_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1, 1.0).unwrap();
/// b.add_edge(1, 2, 0.5).unwrap();
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// A builder for a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Pre-allocates capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Adds an undirected edge; self-loops are dropped, duplicates are
    /// coalesced at [`GraphBuilder::build`] time.
    ///
    /// # Errors
    /// [`GraphError::NodeOutOfBounds`] / [`GraphError::InvalidEdge`] as in
    /// [`Graph::from_edges`].
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) -> Result<&mut Self> {
        if u >= self.n {
            return Err(GraphError::NodeOutOfBounds {
                node: u,
                num_nodes: self.n,
            });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfBounds {
                node: v,
                num_nodes: self.n,
            });
        }
        if weight <= 0.0 || !weight.is_finite() {
            return Err(GraphError::InvalidEdge(format!(
                "weight must be positive and finite, got {weight}"
            )));
        }
        if u != v {
            self.edges
                .push(Edge::new(NodeId::new(u), NodeId::new(v), weight));
        }
        Ok(self)
    }

    /// Number of edges added so far (before coalescing).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finalises the graph.
    pub fn build(self) -> Graph {
        Graph::from_canonical_edges(self.n, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(1.into()), 2);
        assert_eq!(g.weighted_degree(0.into()), 5.0);
        assert_eq!(g.edge_weight(2.into(), 0.into()), Some(4.0));
        assert_eq!(g.edge_weight(0.into(), 0.into()), None);
        assert!((g.total_weight() - 7.0).abs() < 1e-15);
    }

    #[test]
    fn self_loops_dropped_duplicates_coalesced() {
        let g = Graph::from_edges(2, &[(0, 0, 5.0), (0, 1, 1.0), (1, 0, 2.0)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0.into(), 1.into()), Some(3.0));
    }

    #[test]
    fn rejects_bad_edges() {
        assert!(matches!(
            Graph::from_edges(2, &[(0, 5, 1.0)]),
            Err(GraphError::NodeOutOfBounds { node: 5, .. })
        ));
        assert!(matches!(
            Graph::from_edges(2, &[(0, 1, -1.0)]),
            Err(GraphError::InvalidEdge(_))
        ));
        assert!(matches!(
            Graph::from_edges(2, &[(0, 1, f64::NAN)]),
            Err(GraphError::InvalidEdge(_))
        ));
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let g = triangle();
        let l = g.laplacian();
        assert!(l.is_symmetric(0.0));
        let ones = vec![1.0; 3];
        let y = l.matvec_alloc(&ones);
        for v in y {
            assert!(v.abs() < 1e-14);
        }
        assert_eq!(l.get(0, 0), 5.0);
        assert_eq!(l.get(0, 1), -1.0);
    }

    #[test]
    fn adjacency_matrix_matches_edges() {
        let g = triangle();
        let a = g.adjacency_matrix();
        assert_eq!(a.get(1, 2), 2.0);
        assert_eq!(a.get(2, 1), 2.0);
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    fn adjacency_entries_carry_edge_ids() {
        let g = triangle();
        for (i, e) in g.edges().iter().enumerate() {
            let found = g
                .neighbors(e.u)
                .iter()
                .find(|a| a.to == e.v)
                .expect("adjacency present");
            assert_eq!(found.edge, EdgeId::new(i));
            assert_eq!(found.weight, e.weight);
        }
    }

    #[test]
    fn edge_subgraph_keeps_selected() {
        let g = triangle();
        let keep = vec![true, false, true];
        let s = g.edge_subgraph(&keep);
        assert_eq!(s.num_edges(), 2);
        assert_eq!(s.num_nodes(), 3);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    proptest! {
        #[test]
        fn prop_laplacian_quadratic_form_nonnegative(
            edges in proptest::collection::vec((0usize..10, 0usize..10, 0.1f64..5.0), 1..40),
            x in proptest::collection::vec(-3.0f64..3.0, 10),
        ) {
            let g = Graph::from_edges(10, &edges).unwrap();
            let l = g.laplacian();
            prop_assert!(l.quadratic_form(&x) >= -1e-9);
        }

        #[test]
        fn prop_degree_sums_equal_twice_edges(
            edges in proptest::collection::vec((0usize..8, 0usize..8, 0.1f64..5.0), 0..30),
        ) {
            let g = Graph::from_edges(8, &edges).unwrap();
            let total_deg: usize = g.nodes().map(|u| g.degree(u)).sum();
            prop_assert_eq!(total_deg, 2 * g.num_edges());
            let total_wdeg: f64 = g.nodes().map(|u| g.weighted_degree(u)).sum();
            prop_assert!((total_wdeg - 2.0 * g.total_weight()).abs() < 1e-9);
        }
    }
}
