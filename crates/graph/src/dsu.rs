//! Disjoint-set union (union–find) with path compression and union by size.

/// A disjoint-set forest over `0..n`.
///
/// Used by Kruskal's algorithm, by the LRD decomposition in the core crate
/// and by connectivity checks. Union by size + path halving gives effectively
/// constant amortised operations.
///
/// # Example
/// ```
/// use ingrass_graph::DisjointSets;
/// let mut dsu = DisjointSets::new(4);
/// assert!(dsu.union(0, 1));
/// assert!(!dsu.union(1, 0));     // already joined
/// assert!(dsu.same(0, 1));
/// assert_eq!(dsu.num_sets(), 3);
/// assert_eq!(dsu.size_of(0), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DisjointSets {
    parent: Vec<u32>,
    size: Vec<u32>,
    num_sets: usize,
}

impl DisjointSets {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The representative of `x`'s set (with path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.num_sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of sets remaining.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Size of the set containing `x`.
    pub fn size_of(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// Compacts set representatives into dense labels `0..num_sets` and
    /// returns the per-element label vector.
    pub fn labels(&mut self) -> Vec<u32> {
        let n = self.len();
        let mut label_of_root = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut out = vec![0u32; n];
        for x in 0..n {
            let r = self.find(x);
            if label_of_root[r] == u32::MAX {
                label_of_root[r] = next;
                next += 1;
            }
            out[x] = label_of_root[r];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_union_find() {
        let mut d = DisjointSets::new(5);
        assert_eq!(d.num_sets(), 5);
        assert!(d.union(0, 1));
        assert!(d.union(2, 3));
        assert!(!d.same(0, 2));
        assert!(d.union(1, 3));
        assert!(d.same(0, 2));
        assert_eq!(d.num_sets(), 2);
        assert_eq!(d.size_of(3), 4);
        assert_eq!(d.size_of(4), 1);
    }

    #[test]
    fn labels_are_dense_and_consistent() {
        let mut d = DisjointSets::new(6);
        d.union(0, 3);
        d.union(1, 4);
        let labels = d.labels();
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[1], labels[4]);
        assert_ne!(labels[0], labels[1]);
        let max = *labels.iter().max().unwrap() as usize;
        assert_eq!(max + 1, d.num_sets());
    }

    proptest! {
        #[test]
        fn prop_num_sets_matches_distinct_labels(
            unions in proptest::collection::vec((0usize..12, 0usize..12), 0..30)
        ) {
            let mut d = DisjointSets::new(12);
            for (a, b) in unions {
                d.union(a, b);
            }
            let labels = d.labels();
            let distinct: std::collections::HashSet<u32> = labels.iter().copied().collect();
            prop_assert_eq!(distinct.len(), d.num_sets());
        }
    }
}
