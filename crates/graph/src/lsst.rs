//! Spanning trees tailored to spectral sparsification: the feGRASS-style
//! *effective-weight* tree and an AKPW/MPX-flavoured *low-stretch* tree.
//!
//! GRASS \[7\] and feGRASS \[8\] build their sparsifiers around a spanning tree
//! whose off-tree stretch is small; the inGRASS paper cites low-stretch
//! spanning trees (Abraham–Neiman petal decomposition) as the backbone of
//! the sparsifier construction. We implement two practical constructions:
//!
//! * [`effective_weight_tree`] — Kruskal on the *effective weight*
//!   `w(e)·(1/d_w(u) + 1/d_w(v))`, feGRASS's degree-normalised importance
//!   score that approximates edge leverage without any solves.
//! * [`low_stretch_tree`] — recursive ball-growing in the style of
//!   Alon–Karp–Peleg–West as parallelised by Miller–Peng–Xu: sample
//!   exponential start delays, grow shortest-path (by resistance) balls from
//!   all seeds at once, keep the intra-ball shortest-path forests, contract,
//!   and recurse on the quotient.

use crate::dsu::DisjointSets;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::NodeId;
use crate::mst::rooted_from_mask;
use crate::tree::TreeResult;
use crate::Result;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Max-heap entry ordered by *smallest* key first (min-heap via reversal).
#[derive(Debug, PartialEq)]
struct HeapEntry {
    key: f64,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour inside std's max-heap.
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Kruskal keeping the edges with the largest `score`, ties broken by id.
fn kruskal_by_score(g: &Graph, score: &[f64]) -> Result<TreeResult> {
    if g.num_nodes() == 0 {
        return Err(GraphError::Empty);
    }
    let mut order: Vec<usize> = (0..g.num_edges()).collect();
    order.sort_by(|&a, &b| score[b].total_cmp(&score[a]).then(a.cmp(&b)));
    let mut dsu = DisjointSets::new(g.num_nodes());
    let mut in_tree = vec![false; g.num_edges()];
    let mut picked = 0usize;
    for e in order {
        let edge = &g.edges()[e];
        if dsu.union(edge.u.index(), edge.v.index()) {
            in_tree[e] = true;
            picked += 1;
            if picked + 1 == g.num_nodes() {
                break;
            }
        }
    }
    if picked + 1 != g.num_nodes() {
        return Err(GraphError::Disconnected {
            components: dsu.num_sets(),
        });
    }
    let tree = rooted_from_mask(g, &in_tree, NodeId::new(0))?;
    Ok(TreeResult { tree, in_tree })
}

/// feGRASS-style maximum *effective-weight* spanning tree.
///
/// Scores every edge by `w(e) · (1/d_w(u) + 1/d_w(v))` — the weight
/// normalised by the weighted degrees of its endpoints, a solve-free proxy
/// for edge leverage — and runs Kruskal on the scores. Edges that are the
/// dominant connection of a low-degree node win over raw heavy edges inside
/// dense neighbourhoods.
///
/// # Errors
/// [`GraphError::Empty`] / [`GraphError::Disconnected`] as for
/// [`crate::kruskal_tree`].
pub fn effective_weight_tree(g: &Graph) -> Result<TreeResult> {
    let wd: Vec<f64> = (0..g.num_nodes())
        .map(|u| g.weighted_degree(NodeId::new(u)))
        .collect();
    let score: Vec<f64> = g
        .edges()
        .iter()
        .map(|e| e.weight * (1.0 / wd[e.u.index()] + 1.0 / wd[e.v.index()]))
        .collect();
    kruskal_by_score(g, &score)
}

/// Multi-source Dijkstra ball growing with exponential start delays.
///
/// Returns `(cluster_of, num_clusters, intra_tree_edge_mask)`.
fn mpx_decompose(g: &Graph, beta: f64, rng: &mut StdRng) -> (Vec<u32>, usize, Vec<bool>) {
    let n = g.num_nodes();
    let mut delay: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.random::<f64>();
            -(1.0 - u).ln() / beta
        })
        .collect();
    // Shift so the earliest seed starts at 0 (numerical hygiene).
    let min_delay = delay.iter().cloned().fold(f64::INFINITY, f64::min);
    for d in delay.iter_mut() {
        *d -= min_delay;
    }

    let mut dist = vec![f64::INFINITY; n];
    let mut owner = vec![u32::MAX; n];
    let mut parent_edge: Vec<u32> = vec![u32::MAX; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::with_capacity(n);
    for u in 0..n {
        dist[u] = delay[u];
        heap.push(HeapEntry {
            key: delay[u],
            node: u as u32,
        });
    }
    while let Some(HeapEntry { key, node }) = heap.pop() {
        let u = node as usize;
        if settled[u] || key > dist[u] {
            continue;
        }
        settled[u] = true;
        if owner[u] == u32::MAX {
            owner[u] = node; // u became its own cluster seed
        }
        for a in g.neighbors(NodeId::new(u)) {
            let v = a.to.index();
            let nd = dist[u] + 1.0 / a.weight;
            if nd < dist[v] {
                dist[v] = nd;
                owner[v] = owner[u];
                parent_edge[v] = a.edge.raw();
                heap.push(HeapEntry {
                    key: nd,
                    node: v as u32,
                });
            }
        }
    }

    // Compact owner labels and collect intra-cluster SPT edges.
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut cluster_of = vec![0u32; n];
    for u in 0..n {
        let o = owner[u] as usize;
        if label[o] == u32::MAX {
            label[o] = next;
            next += 1;
        }
        cluster_of[u] = label[o];
    }
    let mut intra = vec![false; g.num_edges()];
    for u in 0..n {
        if owner[u] != u as u32 && parent_edge[u] != u32::MAX {
            // u was reached from inside its own ball.
            intra[parent_edge[u] as usize] = true;
        }
    }
    (cluster_of, next as usize, intra)
}

/// Shortest-path-tree mask (by resistance length) from node 0 — the
/// base case of the low-stretch recursion.
fn shortest_path_tree_mask(g: &Graph) -> Vec<bool> {
    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent_edge = vec![u32::MAX; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[0] = 0.0;
    heap.push(HeapEntry { key: 0.0, node: 0 });
    while let Some(HeapEntry { key, node }) = heap.pop() {
        let u = node as usize;
        if settled[u] || key > dist[u] {
            continue;
        }
        settled[u] = true;
        for a in g.neighbors(NodeId::new(u)) {
            let v = a.to.index();
            let nd = dist[u] + 1.0 / a.weight;
            if nd < dist[v] {
                dist[v] = nd;
                parent_edge[v] = a.edge.raw();
                heap.push(HeapEntry {
                    key: nd,
                    node: v as u32,
                });
            }
        }
    }
    let mut mask = vec![false; g.num_edges()];
    for u in 1..n {
        if parent_edge[u] != u32::MAX {
            mask[parent_edge[u] as usize] = true;
        }
    }
    mask
}

fn approx_diameter(g: &Graph) -> f64 {
    // One Dijkstra from node 0; the eccentricity lower-bounds the diameter
    // within a factor of 2, which is enough to scale β.
    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[0] = 0.0;
    heap.push(HeapEntry { key: 0.0, node: 0 });
    let mut max_d: f64 = 0.0;
    while let Some(HeapEntry { key, node }) = heap.pop() {
        let u = node as usize;
        if settled[u] || key > dist[u] {
            continue;
        }
        settled[u] = true;
        max_d = max_d.max(dist[u]);
        for a in g.neighbors(NodeId::new(u)) {
            let v = a.to.index();
            let nd = dist[u] + 1.0 / a.weight;
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(HeapEntry {
                    key: nd,
                    node: v as u32,
                });
            }
        }
    }
    max_d
}

fn lsst_mask(g: &Graph, rng: &mut StdRng, depth: usize) -> Vec<bool> {
    const SMALL: usize = 32;
    const MAX_DEPTH: usize = 64;
    let n = g.num_nodes();
    if n <= SMALL || g.num_edges() + 1 == n || depth >= MAX_DEPTH {
        return shortest_path_tree_mask(g);
    }
    let diam = approx_diameter(g);
    if diam <= 0.0 || !diam.is_finite() {
        return shortest_path_tree_mask(g);
    }
    // Target ball radius ≈ diam/4: β = 4·ln(n+1)/diam keeps radii
    // O(log n / β) = O(diam/4) w.h.p.
    let beta = 4.0 * ((n + 1) as f64).ln() / diam;
    let (cluster_of, k, intra) = mpx_decompose(g, beta, rng);
    if k <= 1 || k == n {
        // Degenerate decomposition — fall back rather than recurse forever.
        return shortest_path_tree_mask(g);
    }
    let (q, reps) = crate::contract::quotient_graph(g, &cluster_of, k);
    let q_mask = lsst_mask(&q, rng, depth + 1);
    let mut mask = intra;
    for (qe, picked) in q_mask.iter().enumerate() {
        if *picked {
            mask[reps[qe].index()] = true;
        }
    }
    mask
}

/// AKPW/MPX-flavoured low-stretch spanning tree.
///
/// Deterministic for a fixed `seed`. The construction recursively:
/// 1. grows shortest-path balls (edge length = resistance `1/w`) from seeds
///    with exponential start delays `Exp(β)`, `β = Θ(log n / diam)`;
/// 2. keeps each ball's internal shortest-path tree;
/// 3. contracts balls ([`quotient_graph`](crate::quotient_graph)) and
///    recurses, lifting quotient tree edges back through representative
///    original edges.
///
/// Typical total stretch is significantly below the max-weight Kruskal
/// tree's on mesh-like graphs (see the `bench_ablation` Criterion bench).
///
/// # Errors
/// [`GraphError::Empty`] / [`GraphError::Disconnected`] as for
/// [`crate::kruskal_tree`].
pub fn low_stretch_tree(g: &Graph, seed: u64) -> Result<TreeResult> {
    if g.num_nodes() == 0 {
        return Err(GraphError::Empty);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mask = lsst_mask(g, &mut rng, 0);
    let picked = mask.iter().filter(|&&b| b).count();
    if picked + 1 != g.num_nodes() {
        return Err(GraphError::Disconnected {
            components: g.num_nodes() - picked,
        });
    }
    let tree = rooted_from_mask(g, &mask, NodeId::new(0))?;
    Ok(TreeResult {
        tree,
        in_tree: mask,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::{kruskal_tree, TreeObjective};
    use crate::treeres::TreePathResistance;

    fn grid(w: usize, h: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let u = y * w + x;
                if x + 1 < w {
                    edges.push((u, u + 1, 0.5 + rng.random::<f64>()));
                }
                if y + 1 < h {
                    edges.push((u, u + w, 0.5 + rng.random::<f64>()));
                }
            }
        }
        Graph::from_edges(w * h, &edges).unwrap()
    }

    #[test]
    fn effective_weight_tree_spans() {
        let g = grid(8, 8, 1);
        let t = effective_weight_tree(&g).unwrap();
        assert_eq!(t.in_tree.iter().filter(|&&b| b).count(), 63);
        assert_eq!(t.tree.num_nodes(), 64);
        for (u, p, w) in t.tree.edges() {
            assert_eq!(g.edge_weight(u, p), Some(w));
        }
    }

    #[test]
    fn low_stretch_tree_spans_and_is_deterministic() {
        let g = grid(10, 10, 2);
        let a = low_stretch_tree(&g, 5).unwrap();
        let b = low_stretch_tree(&g, 5).unwrap();
        assert_eq!(a.in_tree, b.in_tree);
        assert_eq!(a.in_tree.iter().filter(|&&x| x).count(), 99);
    }

    #[test]
    fn low_stretch_beats_or_matches_max_weight_on_grid_stretch() {
        // On larger grids the ball-growing tree should not be much worse
        // than Kruskal in total stretch — and usually better.
        let g = grid(20, 20, 3);
        let lsst = low_stretch_tree(&g, 7).unwrap();
        let kruskal = kruskal_tree(&g, TreeObjective::MaxWeight).unwrap();
        let s_lsst = TreePathResistance::new(&g, &lsst.tree).total_stretch(&g);
        let s_kruskal = TreePathResistance::new(&g, &kruskal.tree).total_stretch(&g);
        assert!(
            s_lsst <= 1.5 * s_kruskal,
            "lsst stretch {s_lsst} vs kruskal {s_kruskal}"
        );
    }

    #[test]
    fn disconnected_input_errors() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        assert!(matches!(
            low_stretch_tree(&g, 1),
            Err(GraphError::Disconnected { .. })
        ));
        assert!(matches!(
            effective_weight_tree(&g),
            Err(GraphError::Disconnected { .. })
        ));
    }

    #[test]
    fn tiny_graph_uses_base_case() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]).unwrap();
        let t = low_stretch_tree(&g, 0).unwrap();
        assert_eq!(t.in_tree.iter().filter(|&&b| b).count(), 2);
    }
}
