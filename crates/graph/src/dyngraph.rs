//! The mutable graph used for the sparsifier under incremental updates.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::{Edge, EdgeId, NodeId};
use crate::Result;
use std::collections::HashMap;

/// A mutable weighted undirected graph with **stable edge ids**.
///
/// This is the representation of the sparsifier `H` while inGRASS updates
/// it: the update phase needs to (a) insert a new edge, (b) *add weight onto
/// an existing edge* when a new edge is merged into it, and (c) look up the
/// edge between two endpoints — all in `O(1)` expected time. Edge ids are
/// never reused, so the multilevel cluster-connectivity structure can keep
/// long-lived references to representative edges.
///
/// Edge removal is provided as a hook for future deletion support (the
/// inGRASS paper handles insertions only); removed ids become permanently
/// dead.
///
/// # Example
/// ```
/// use ingrass_graph::DynGraph;
/// let mut h = DynGraph::new(3);
/// let (e01, created) = h.add_edge(0.into(), 1.into(), 1.0).unwrap();
/// assert!(created);
/// // Inserting the same pair again merges weights and returns the same id.
/// let (e01b, created) = h.add_edge(1.into(), 0.into(), 2.0).unwrap();
/// assert!(!created);
/// assert_eq!(e01, e01b);
/// assert_eq!(h.edge_weight(0.into(), 1.into()), Some(3.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DynGraph {
    n: usize,
    edges: Vec<Option<Edge>>,
    adj: Vec<Vec<(u32, u32)>>, // (neighbour, edge id)
    /// Dead entries per adjacency list; when a list is more than half dead
    /// it is compacted, so removal stays amortized `O(1)` instead of the
    /// eager `O(deg)` scan of both endpoints.
    adj_dead: Vec<u32>,
    index: HashMap<(u32, u32), u32>,
    live_edges: usize,
}

impl DynGraph {
    /// An edgeless graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        DynGraph {
            n,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            adj_dead: vec![0; n],
            index: HashMap::new(),
            live_edges: 0,
        }
    }

    /// Copies a static graph into dynamic form (edge ids are preserved).
    pub fn from_graph(g: &Graph) -> Self {
        let mut d = DynGraph::new(g.num_nodes());
        d.edges.reserve(g.num_edges());
        d.index.reserve(g.num_edges());
        for e in g.edges() {
            let id = d.edges.len() as u32;
            d.edges.push(Some(*e));
            d.adj[e.u.index()].push((e.v.raw(), id));
            d.adj[e.v.index()].push((e.u.raw(), id));
            d.index.insert((e.u.raw(), e.v.raw()), id);
        }
        d.live_edges = g.num_edges();
        d
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of live edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.live_edges
    }

    fn canonical(u: NodeId, v: NodeId) -> (u32, u32) {
        if u.raw() <= v.raw() {
            (u.raw(), v.raw())
        } else {
            (v.raw(), u.raw())
        }
    }

    fn check_node(&self, u: NodeId) -> Result<()> {
        if u.index() >= self.n {
            return Err(GraphError::NodeOutOfBounds {
                node: u.index(),
                num_nodes: self.n,
            });
        }
        Ok(())
    }

    /// Inserts the edge `{u, v}` with weight `w`, or adds `w` onto the
    /// existing edge. Returns the edge id and whether a new edge was
    /// created.
    ///
    /// # Errors
    /// [`GraphError::NodeOutOfBounds`] for bad endpoints;
    /// [`GraphError::InvalidEdge`] for self-loops or non-positive/non-finite
    /// weights.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: f64) -> Result<(EdgeId, bool)> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::InvalidEdge("self-loop".into()));
        }
        if w <= 0.0 || !w.is_finite() {
            return Err(GraphError::InvalidEdge(format!(
                "weight must be positive and finite, got {w}"
            )));
        }
        let key = Self::canonical(u, v);
        if let Some(&id) = self.index.get(&key) {
            let e = self.edges[id as usize]
                .as_mut()
                .expect("indexed edge must be live");
            e.weight += w;
            return Ok((EdgeId::from(id), false));
        }
        let id = self.edges.len() as u32;
        self.edges.push(Some(Edge::new(u, v, w)));
        self.adj[u.index()].push((v.raw(), id));
        self.adj[v.index()].push((u.raw(), id));
        self.index.insert(key, id);
        self.live_edges += 1;
        Ok((EdgeId::from(id), true))
    }

    /// Adds `dw` onto an existing edge's weight.
    ///
    /// # Errors
    /// [`GraphError::InvalidEdge`] if the id is dead/out of range or the
    /// resulting weight would be non-positive.
    pub fn add_weight(&mut self, e: EdgeId, dw: f64) -> Result<()> {
        let slot = self
            .edges
            .get_mut(e.index())
            .and_then(|s| s.as_mut())
            .ok_or_else(|| GraphError::InvalidEdge(format!("edge {e} does not exist")))?;
        let new_w = slot.weight + dw;
        if new_w <= 0.0 || !new_w.is_finite() {
            return Err(GraphError::InvalidEdge(format!(
                "weight update would make weight {new_w}"
            )));
        }
        slot.weight = new_w;
        Ok(())
    }

    /// The edge with id `e`, if live.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> Option<Edge> {
        self.edges.get(e.index()).and_then(|s| *s)
    }

    /// The id of the edge `{u, v}`, if present.
    pub fn edge_id(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.index
            .get(&Self::canonical(u, v))
            .map(|&id| EdgeId::from(id))
    }

    /// Weight of the edge `{u, v}`, if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.edge_id(u, v)
            .and_then(|e| self.edge(e))
            .map(|e| e.weight)
    }

    /// Live neighbours of `u` as `(neighbour, edge id, weight)`.
    ///
    /// # Panics
    /// Panics if `u` is out of bounds.
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = (NodeId, EdgeId, f64)> + '_ {
        self.adj[u.index()].iter().filter_map(move |&(v, id)| {
            self.edges[id as usize].map(|e| (NodeId::from(v), EdgeId::from(id), e.weight))
        })
    }

    /// Live degree of `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).count()
    }

    /// Iterator over live edges as `(id, edge)`.
    pub fn edges_iter(&self) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|e| (EdgeId::new(i), e)))
    }

    /// Sum of live edge weights.
    pub fn total_weight(&self) -> f64 {
        self.edges_iter().map(|(_, e)| e.weight).sum()
    }

    /// Removes the edge `{u, v}` and returns its weight.
    ///
    /// This is the deletion half of the engine's churn path (`apply_batch`
    /// with `UpdateOp::Delete`). The edge slot becomes a permanent
    /// tombstone (ids are never reused), but the adjacency lists are
    /// compacted *lazily*: a removal only marks the entry dead in `O(1)`,
    /// and a list is rebuilt once more than half of it is dead — amortized
    /// `O(1)` per removal instead of an eager `O(deg)` scan of both
    /// endpoints.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Option<f64> {
        let key = Self::canonical(u, v);
        let id = self.index.remove(&key)?;
        let e = self.edges[id as usize].take()?;
        self.live_edges -= 1;
        self.mark_dead(u.index());
        self.mark_dead(v.index());
        Some(e.weight)
    }

    /// Records one dead adjacency entry at node `u` and compacts the list
    /// when the dead fraction crosses one half.
    fn mark_dead(&mut self, u: usize) {
        self.adj_dead[u] += 1;
        if (self.adj_dead[u] as usize) * 2 > self.adj[u].len() {
            let edges = &self.edges;
            self.adj[u].retain(|&(_, id)| edges[id as usize].is_some());
            self.adj_dead[u] = 0;
        }
    }

    /// Overwrites an existing edge's weight and returns the previous value.
    ///
    /// # Errors
    /// [`GraphError::InvalidEdge`] if the id is dead/out of range or the new
    /// weight is non-positive or non-finite.
    pub fn set_weight(&mut self, e: EdgeId, w: f64) -> Result<f64> {
        if w <= 0.0 || !w.is_finite() {
            return Err(GraphError::InvalidEdge(format!(
                "weight must be positive and finite, got {w}"
            )));
        }
        let slot = self
            .edges
            .get_mut(e.index())
            .and_then(|s| s.as_mut())
            .ok_or_else(|| GraphError::InvalidEdge(format!("edge {e} does not exist")))?;
        let old = slot.weight;
        slot.weight = w;
        Ok(old)
    }

    /// Whether `u` and `v` are connected by live edges (BFS).
    ///
    /// The engine's deletion path uses this to detect bridge removals that
    /// would disconnect the sparsifier (and therefore need a re-link).
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of bounds.
    pub fn are_connected(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut queue = std::collections::VecDeque::new();
        seen[u.index()] = true;
        queue.push_back(u);
        while let Some(x) = queue.pop_front() {
            for (y, _, _) in self.neighbors(x) {
                if y == v {
                    return true;
                }
                if !seen[y.index()] {
                    seen[y.index()] = true;
                    queue.push_back(y);
                }
            }
        }
        false
    }

    /// Snapshots into an immutable [`Graph`].
    ///
    /// Edge ids are *not* preserved (dead slots are compacted); use the
    /// returned graph for matrix export and measurement, not for id-based
    /// bookkeeping.
    pub fn to_graph(&self) -> Graph {
        let edges: Vec<Edge> = self.edges_iter().map(|(_, e)| e).collect();
        Graph::from_canonical_edges(self.n, edges)
    }

    /// The full edge-slot array for persistence, *including tombstones*:
    /// entry `i` is `Some((u, v, w))` if edge id `i` is live and `None` if
    /// the id has been removed. Ids are array positions, so a graph rebuilt
    /// with [`DynGraph::from_edge_slots`] preserves every live edge id —
    /// which id-keyed structures (cluster connectivity, edge-delta
    /// journals) require across a save/restore cycle.
    pub fn edge_slots(&self) -> Vec<Option<(u32, u32, f64)>> {
        self.edges
            .iter()
            .map(|s| s.map(|e| (e.u.raw(), e.v.raw(), e.weight)))
            .collect()
    }

    /// Rebuilds a graph from a persisted edge-slot array (the inverse of
    /// [`DynGraph::edge_slots`]).
    ///
    /// Live edge ids equal their slot positions; adjacency lists are
    /// rebuilt in id order with no dead entries, which is observationally
    /// identical to any compaction state the original graph was in (the
    /// engine only ever consumes adjacency through live-edge iteration).
    ///
    /// # Errors
    /// [`GraphError::NodeOutOfBounds`] / [`GraphError::InvalidEdge`] on
    /// out-of-range endpoints, self-loops, non-positive weights, or a
    /// duplicate live pair.
    pub fn from_edge_slots(n: usize, slots: &[Option<(u32, u32, f64)>]) -> Result<Self> {
        let mut d = DynGraph::new(n);
        d.edges.reserve(slots.len());
        for (i, slot) in slots.iter().enumerate() {
            let Some((u, v, w)) = *slot else {
                d.edges.push(None);
                continue;
            };
            if u as usize >= n || v as usize >= n {
                return Err(GraphError::NodeOutOfBounds {
                    node: u.max(v) as usize,
                    num_nodes: n,
                });
            }
            if u == v {
                return Err(GraphError::InvalidEdge(format!("self-loop in slot {i}")));
            }
            if w <= 0.0 || !w.is_finite() {
                return Err(GraphError::InvalidEdge(format!(
                    "slot {i} weight must be positive and finite, got {w}"
                )));
            }
            let id = i as u32;
            let key = (u.min(v), u.max(v));
            if d.index.insert(key, id).is_some() {
                return Err(GraphError::InvalidEdge(format!(
                    "duplicate live edge {{{u}, {v}}} at slot {i}"
                )));
            }
            d.edges
                .push(Some(Edge::new(NodeId::from(u), NodeId::from(v), w)));
            d.adj[u as usize].push((v, id));
            d.adj[v as usize].push((u, id));
            d.live_edges += 1;
        }
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_merge_and_query() {
        let mut h = DynGraph::new(4);
        let (e, created) = h.add_edge(0.into(), 1.into(), 1.5).unwrap();
        assert!(created);
        assert_eq!(h.num_edges(), 1);
        let (e2, created2) = h.add_edge(1.into(), 0.into(), 0.5).unwrap();
        assert!(!created2);
        assert_eq!(e, e2);
        assert_eq!(h.edge_weight(0.into(), 1.into()), Some(2.0));
        assert_eq!(h.edge(e).unwrap().weight, 2.0);
        assert_eq!(h.degree(0.into()), 1);
    }

    #[test]
    fn add_weight_updates_edge() {
        let mut h = DynGraph::new(2);
        let (e, _) = h.add_edge(0.into(), 1.into(), 1.0).unwrap();
        h.add_weight(e, 2.5).unwrap();
        assert_eq!(h.edge_weight(0.into(), 1.into()), Some(3.5));
        assert!(h.add_weight(e, -10.0).is_err());
        assert!(h.add_weight(EdgeId::new(99), 1.0).is_err());
    }

    #[test]
    fn rejects_invalid_inserts() {
        let mut h = DynGraph::new(2);
        assert!(h.add_edge(0.into(), 0.into(), 1.0).is_err());
        assert!(h.add_edge(0.into(), 5.into(), 1.0).is_err());
        assert!(h.add_edge(0.into(), 1.into(), 0.0).is_err());
        assert!(h.add_edge(0.into(), 1.into(), f64::INFINITY).is_err());
    }

    #[test]
    fn from_graph_preserves_ids_and_weights() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]).unwrap();
        let h = DynGraph::from_graph(&g);
        assert_eq!(h.num_edges(), 3);
        for (i, e) in g.edges().iter().enumerate() {
            assert_eq!(h.edge(EdgeId::new(i)).unwrap(), *e);
        }
    }

    #[test]
    fn remove_edge_and_tombstones() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)]).unwrap();
        let mut h = DynGraph::from_graph(&g);
        assert_eq!(h.remove_edge(0.into(), 1.into()), Some(1.0));
        assert_eq!(h.remove_edge(0.into(), 1.into()), None);
        assert_eq!(h.num_edges(), 1);
        assert_eq!(h.edge(EdgeId::new(0)), None);
        assert_eq!(h.degree(0.into()), 0);
        // Re-inserting creates a fresh id.
        let (e, created) = h.add_edge(0.into(), 1.into(), 5.0).unwrap();
        assert!(created);
        assert_eq!(e, EdgeId::new(2));
    }

    #[test]
    fn set_weight_overwrites_and_validates() {
        let mut h = DynGraph::new(2);
        let (e, _) = h.add_edge(0.into(), 1.into(), 1.0).unwrap();
        assert_eq!(h.set_weight(e, 4.0).unwrap(), 1.0);
        assert_eq!(h.edge_weight(0.into(), 1.into()), Some(4.0));
        assert!(h.set_weight(e, 0.0).is_err());
        assert!(h.set_weight(e, f64::NAN).is_err());
        assert!(h.set_weight(EdgeId::new(7), 1.0).is_err());
        h.remove_edge(0.into(), 1.into());
        assert!(h.set_weight(e, 1.0).is_err());
    }

    #[test]
    fn are_connected_tracks_removals() {
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 2, 1.0)]).unwrap();
        let mut h = DynGraph::from_graph(&g);
        assert!(h.are_connected(0.into(), 3.into()));
        // {1,2} has the parallel path 1-0-2.
        h.remove_edge(1.into(), 2.into());
        assert!(h.are_connected(1.into(), 2.into()));
        // {2,3} is a bridge: removing it isolates node 3.
        h.remove_edge(2.into(), 3.into());
        assert!(!h.are_connected(0.into(), 3.into()));
        assert!(h.are_connected(3.into(), 3.into()));
    }

    #[test]
    fn interleaved_add_remove_stays_consistent() {
        // Regression test for the lazy adjacency compaction: heavy
        // interleaved churn must keep num_edges / degrees / to_graph in
        // agreement with a straightforward reference map.
        let n = 12usize;
        let mut h = DynGraph::new(n);
        let mut reference: std::collections::BTreeMap<(usize, usize), f64> =
            std::collections::BTreeMap::new();
        let mut tick = 0u64;
        for round in 0..6 {
            for u in 0..n {
                for v in (u + 1)..n {
                    tick = tick
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(round + 1);
                    match tick % 3 {
                        0 => {
                            let w = 1.0 + (tick % 7) as f64;
                            h.add_edge(u.into(), v.into(), w).unwrap();
                            *reference.entry((u, v)).or_insert(0.0) += w;
                        }
                        1 => {
                            let got = h.remove_edge(u.into(), v.into());
                            let expect = reference.remove(&(u, v));
                            assert_eq!(got.is_some(), expect.is_some());
                        }
                        _ => {}
                    }
                }
            }
            assert_eq!(h.num_edges(), reference.len(), "round {round}");
        }
        // Degrees agree with the reference adjacency.
        for u in 0..n {
            let expect = reference.keys().filter(|&&(a, b)| a == u || b == u).count();
            assert_eq!(h.degree(u.into()), expect, "degree of {u}");
            // Each live neighbour appears exactly once.
            let mut nbrs: Vec<usize> = h.neighbors(u.into()).map(|(v, _, _)| v.index()).collect();
            nbrs.sort_unstable();
            nbrs.dedup();
            assert_eq!(nbrs.len(), expect, "duplicate neighbour at {u}");
        }
        // Snapshot round-trips every surviving edge and weight.
        let g = h.to_graph();
        assert_eq!(g.num_edges(), reference.len());
        for (&(u, v), &w) in &reference {
            let got = g.edge_weight(u.into(), v.into()).unwrap();
            assert!((got - w).abs() < 1e-9, "({u},{v}): {got} vs {w}");
            assert_eq!(h.edge_weight(u.into(), v.into()), Some(got));
        }
    }

    #[test]
    fn to_graph_round_trips_weights() {
        let mut h = DynGraph::new(3);
        h.add_edge(0.into(), 1.into(), 1.0).unwrap();
        h.add_edge(1.into(), 2.into(), 2.0).unwrap();
        h.remove_edge(0.into(), 1.into());
        let g = h.to_graph();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(1.into(), 2.into()), Some(2.0));
    }

    proptest! {
        #[test]
        fn prop_dyngraph_matches_builder_semantics(
            ops in proptest::collection::vec((0usize..8, 0usize..8, 0.1f64..5.0), 1..50),
        ) {
            // Applying the same inserts to DynGraph and GraphBuilder must
            // produce identical graphs.
            let mut h = DynGraph::new(8);
            let mut edges = Vec::new();
            for (u, v, w) in ops {
                if u != v {
                    h.add_edge(u.into(), v.into(), w).unwrap();
                    edges.push((u, v, w));
                }
            }
            let g = Graph::from_edges(8, &edges).unwrap();
            let hg = h.to_graph();
            prop_assert_eq!(g.num_edges(), hg.num_edges());
            for e in g.edges() {
                let w = hg.edge_weight(e.u, e.v).unwrap();
                prop_assert!((w - e.weight).abs() < 1e-9);
            }
        }
    }
}
