//! Exact `O(n)` solves with a spanning-tree Laplacian, and the classic
//! support-graph (tree) preconditioner built on top of them.

use crate::tree::Tree;
use ingrass_linalg::Preconditioner;

/// Solves `L_T x = b` exactly in `O(n)` for the Laplacian of a spanning
/// tree `T`.
///
/// For a consistent right-hand side (`Σ b_i = 0`) the solution is computed by
/// interpreting `b` as node current injections: an up-sweep (reverse
/// preorder) accumulates the branch current through every tree edge, a
/// down-sweep (preorder) integrates potential drops from the root. The
/// returned potentials are normalised to zero mean, making the map exactly
/// `L_T⁺` on the subspace orthogonal to the constant vector.
///
/// This is the classical support-graph preconditioner (Vaidya; Spielman–Teng
/// lineage): preconditioning CG on a graph Laplacian `L_G` with the solver of
/// a spanning tree of `G` bounds the iteration count by the total stretch of
/// `G` over `T`.
///
/// # Example
/// ```
/// use ingrass_graph::{Tree, TreeLaplacianSolver};
/// // Path 0-1-2 with unit weights.
/// let t = Tree::from_parent(0.into(), vec![0, 0, 1], vec![0.0, 1.0, 1.0]).unwrap();
/// let solver = TreeLaplacianSolver::new(&t);
/// // Inject +1 at node 0, -1 at node 2: potential drop = resistance 2.
/// let x = solver.solve(&[1.0, 0.0, -1.0]);
/// assert!((x[0] - x[2] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct TreeLaplacianSolver {
    /// Preorder of the tree (parents before children).
    preorder: Vec<u32>,
    /// Parent of each node (self for the root).
    parent: Vec<u32>,
    /// Resistance (1/weight) of each node's parent edge; 0 for the root.
    parent_resistance: Vec<f64>,
    root: u32,
}

impl TreeLaplacianSolver {
    /// Builds the solver from a tree.
    pub fn new(tree: &Tree) -> Self {
        let n = tree.num_nodes();
        let mut parent = vec![0u32; n];
        let mut parent_resistance = vec![0.0; n];
        for u in 0..n {
            let node = crate::ids::NodeId::new(u);
            match tree.parent(node) {
                Some(p) => {
                    parent[u] = p.raw();
                    parent_resistance[u] = 1.0 / tree.parent_weight(node);
                }
                None => parent[u] = u as u32,
            }
        }
        TreeLaplacianSolver {
            preorder: tree.preorder().to_vec(),
            parent,
            parent_resistance,
            root: tree.root().raw(),
        }
    }

    /// Number of nodes.
    pub fn dim(&self) -> usize {
        self.parent.len()
    }

    /// Solves `L_T x = b` into `x` (both length `n`).
    ///
    /// The right-hand side is implicitly projected to zero mean, and the
    /// output has zero mean, so the map is symmetric PSD — safe to use as a
    /// CG preconditioner even with slightly inconsistent inputs.
    ///
    /// # Panics
    /// Panics if `b.len()` or `x.len()` differ from the node count.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        let n = self.dim();
        assert_eq!(b.len(), n, "tree solve: b dimension");
        assert_eq!(x.len(), n, "tree solve: x dimension");
        if n == 0 {
            return;
        }
        // Project b to zero mean (consistency).
        let mean = b.iter().sum::<f64>() / n as f64;
        // Up-sweep: accumulate subtree current injections.
        // flow[u] = total current that must flow from u to its parent.
        let mut flow: Vec<f64> = b.iter().map(|v| v - mean).collect();
        for &u in self.preorder.iter().rev() {
            let p = self.parent[u as usize];
            if p != u {
                let fu = flow[u as usize];
                flow[p as usize] += fu;
            }
        }
        // Down-sweep: integrate potential drops from the root.
        x[self.root as usize] = 0.0;
        for &u in &self.preorder {
            let p = self.parent[u as usize];
            if p != u {
                x[u as usize] =
                    x[p as usize] + flow[u as usize] * self.parent_resistance[u as usize];
            }
        }
        // Normalise to zero mean so the map equals L_T⁺ on 1⊥.
        let xmean = x.iter().sum::<f64>() / n as f64;
        for xi in x.iter_mut() {
            *xi -= xmean;
        }
    }

    /// Allocating variant of [`TreeLaplacianSolver::solve_into`].
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.dim()];
        self.solve_into(b, &mut x);
        x
    }
}

/// [`Preconditioner`] adapter: preconditions a graph-Laplacian CG solve with
/// the exact inverse of a spanning-tree Laplacian.
#[derive(Debug, Clone)]
pub struct TreePrecond {
    solver: TreeLaplacianSolver,
}

impl TreePrecond {
    /// Builds the preconditioner from a spanning tree of the graph whose
    /// Laplacian is being solved.
    pub fn new(tree: &Tree) -> Self {
        TreePrecond {
            solver: TreeLaplacianSolver::new(tree),
        }
    }
}

impl Preconditioner for TreePrecond {
    fn dim(&self) -> usize {
        self.solver.dim()
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.solver.solve_into(r, z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::mst::{kruskal_tree, TreeObjective};
    use ingrass_linalg::{pcg, CgOptions, DenseMatrix, JacobiPrecond};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn tree_laplacian_dense(t: &Tree) -> DenseMatrix {
        let n = t.num_nodes();
        let mut l = DenseMatrix::zeros(n, n);
        for (u, p, w) in t.edges() {
            l.add(u.index(), u.index(), w);
            l.add(p.index(), p.index(), w);
            l.add(u.index(), p.index(), -w);
            l.add(p.index(), u.index(), -w);
        }
        l
    }

    #[test]
    fn solve_matches_dense_pseudoinverse() {
        // Random-ish tree over 8 nodes.
        let parent = vec![0u32, 0, 0, 1, 1, 2, 4, 4];
        let weight = vec![0.0, 2.0, 1.0, 0.5, 3.0, 1.5, 4.0, 0.25];
        let t = Tree::from_parent(0.into(), parent, weight).unwrap();
        let solver = TreeLaplacianSolver::new(&t);
        let l = tree_laplacian_dense(&t);
        let mut b = vec![1.0, -0.5, 0.25, -0.75, 0.5, 0.25, -1.0, 0.25];
        let mean = b.iter().sum::<f64>() / b.len() as f64;
        for v in b.iter_mut() {
            *v -= mean;
        }
        let x = solver.solve(&b);
        let x_ref = l.pseudo_inverse_apply(&b, 1e-12).unwrap();
        for i in 0..8 {
            assert!(
                (x[i] - x_ref[i]).abs() < 1e-10,
                "component {i}: {} vs {}",
                x[i],
                x_ref[i]
            );
        }
    }

    #[test]
    fn solve_output_satisfies_laplacian_equation() {
        let parent = vec![0u32, 0, 1, 2, 2];
        let weight = vec![0.0, 1.0, 2.0, 4.0, 0.5];
        let t = Tree::from_parent(0.into(), parent, weight).unwrap();
        let solver = TreeLaplacianSolver::new(&t);
        let b = vec![2.0, -1.0, 0.0, -1.0, 0.0];
        let x = solver.solve(&b);
        let l = tree_laplacian_dense(&t);
        let lx = l.matvec(&x);
        for i in 0..5 {
            assert!((lx[i] - b[i]).abs() < 1e-12, "row {i}");
        }
        assert!(x.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn tree_preconditioner_beats_jacobi_on_grid() {
        // 2-D grid graph: tree-PCG should need (many) fewer iterations than
        // Jacobi-PCG at the same tolerance.
        let (w, h) = (12, 12);
        let n = w * h;
        let mut rng = StdRng::seed_from_u64(3);
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let u = y * w + x;
                if x + 1 < w {
                    edges.push((u, u + 1, 0.5 + rng.random::<f64>()));
                }
                if y + 1 < h {
                    edges.push((u, u + w, 0.5 + rng.random::<f64>()));
                }
            }
        }
        let g = Graph::from_edges(n, &edges).unwrap();
        let l = g.laplacian();
        let t = kruskal_tree(&g, TreeObjective::MaxWeight).unwrap();

        let mut b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mean = b.iter().sum::<f64>() / n as f64;
        b.iter_mut().for_each(|v| *v -= mean);
        let ones = vec![1.0; n];
        let opts = CgOptions::default().with_rel_tol(1e-8);

        let mut x1 = vec![0.0; n];
        let jac = JacobiPrecond::from_matrix(&l);
        let r1 = pcg(&l, &b, &mut x1, &jac, Some(&ones), &opts);

        let mut x2 = vec![0.0; n];
        let tp = TreePrecond::new(&t.tree);
        let r2 = pcg(&l, &b, &mut x2, &tp, Some(&ones), &opts);

        assert!(r1.converged && r2.converged);
        assert!(
            r2.iterations <= r1.iterations,
            "tree {} vs jacobi {}",
            r2.iterations,
            r1.iterations
        );
        // Both reach the same solution.
        for i in 0..n {
            assert!((x1[i] - x2[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn single_node_solve_is_zero() {
        let t = Tree::from_parent(0.into(), vec![0], vec![0.0]).unwrap();
        let s = TreeLaplacianSolver::new(&t);
        assert_eq!(s.solve(&[5.0]), vec![0.0]);
    }

    proptest! {
        #[test]
        fn prop_solver_inverts_tree_laplacian(
            shape in proptest::collection::vec((0usize..1000, 0.1f64..10.0), 1..24),
            rhs in proptest::collection::vec(-5.0f64..5.0, 25),
        ) {
            let n = shape.len() + 1;
            let mut parent = vec![0u32];
            let mut weight = vec![0.0f64];
            for (i, (r, w)) in shape.iter().enumerate() {
                parent.push((r % (i + 1)) as u32);
                weight.push(*w);
            }
            let t = Tree::from_parent(0.into(), parent, weight).unwrap();
            let solver = TreeLaplacianSolver::new(&t);
            let mut b = rhs[..n].to_vec();
            let mean = b.iter().sum::<f64>() / n as f64;
            b.iter_mut().for_each(|v| *v -= mean);
            let x = solver.solve(&b);
            let l = tree_laplacian_dense(&t);
            let lx = l.matvec(&x);
            for i in 0..n {
                prop_assert!((lx[i] - b[i]).abs() < 1e-8);
            }
        }
    }
}
