//! Tree-path effective resistance and spectral distortion.

use crate::graph::Graph;
use crate::ids::NodeId;
use crate::lca::LcaIndex;
use crate::tree::Tree;

/// Oracle for effective resistances *measured along a spanning tree*.
///
/// For nodes `u`, `v` the tree-path resistance is
/// `R_T(u, v) = Σ_{e ∈ path_T(u,v)} 1/w(e)`; for an off-tree edge `e = (u,v)`
/// the quantity `w(e) · R_T(u, v)` is its *stretch*, which GRASS \[7\] uses as
/// the spectral-distortion score for ranking off-tree edge candidates
/// (Lemma 3.2 of the inGRASS paper: distortion `≈ w·R`).
///
/// Construction is `O(n log n)` (LCA index + one prefix pass); queries are
/// `O(1)`.
///
/// # Example
/// ```
/// use ingrass_graph::{Graph, kruskal_tree, TreeObjective, TreePathResistance};
/// let g = Graph::from_edges(4, &[(0,1,1.0), (1,2,0.5), (2,3,1.0), (0,3,2.0)]).unwrap();
/// let t = kruskal_tree(&g, TreeObjective::MaxWeight).unwrap();
/// let oracle = TreePathResistance::new(&g, &t.tree);
/// let r = oracle.resistance(0.into(), 2.into());
/// assert!(r > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct TreePathResistance {
    lca: LcaIndex,
    /// Resistance from each node up to the root.
    root_resistance: Vec<f64>,
}

impl TreePathResistance {
    /// Builds the oracle for `tree` (spanning `graph`'s nodes).
    ///
    /// `graph` is only used for a dimension sanity check; the resistances
    /// come from the tree's own edge weights.
    ///
    /// # Panics
    /// Panics if `graph` and `tree` disagree on the node count.
    pub fn new(graph: &Graph, tree: &Tree) -> Self {
        assert_eq!(
            graph.num_nodes(),
            tree.num_nodes(),
            "graph/tree node count mismatch"
        );
        Self::from_tree(tree)
    }

    /// Builds the oracle from a tree alone.
    pub fn from_tree(tree: &Tree) -> Self {
        let n = tree.num_nodes();
        let mut root_resistance = vec![0.0; n];
        // Preorder guarantees parents are processed before children.
        for &u in tree.preorder() {
            let node = NodeId::from(u);
            if let Some(p) = tree.parent(node) {
                root_resistance[u as usize] =
                    root_resistance[p.index()] + 1.0 / tree.parent_weight(node);
            }
        }
        TreePathResistance {
            lca: LcaIndex::new(tree),
            root_resistance,
        }
    }

    /// Tree-path resistance between `u` and `v`.
    pub fn resistance(&self, u: NodeId, v: NodeId) -> f64 {
        let a = self.lca.lca(u, v);
        self.root_resistance[u.index()] + self.root_resistance[v.index()]
            - 2.0 * self.root_resistance[a.index()]
    }

    /// Spectral distortion (stretch) of a candidate edge `(u, v)` with
    /// weight `w`: `w · R_T(u, v)`.
    pub fn distortion(&self, u: NodeId, v: NodeId, weight: f64) -> f64 {
        weight * self.resistance(u, v)
    }

    /// Distortions of all graph edges, indexed by edge id. Tree edges get
    /// their exact stretch of 1 (their path is the edge itself) only if the
    /// tree uses the same weight; in general this evaluates the formula for
    /// every edge.
    pub fn edge_distortions(&self, graph: &Graph) -> Vec<f64> {
        graph
            .edges()
            .iter()
            .map(|e| self.distortion(e.u, e.v, e.weight))
            .collect()
    }

    /// Total stretch of the graph w.r.t. the tree — the classic quality
    /// measure of low-stretch spanning trees.
    pub fn total_stretch(&self, graph: &Graph) -> f64 {
        self.edge_distortions(graph).iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::{kruskal_tree, TreeObjective};
    use proptest::prelude::*;

    #[test]
    fn path_resistance_adds_along_chain() {
        // Chain 0-1-2-3 with weights 1, 2, 4 (resistances 1, 0.5, 0.25).
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 4.0)]).unwrap();
        let t = kruskal_tree(&g, TreeObjective::MaxWeight).unwrap();
        let o = TreePathResistance::new(&g, &t.tree);
        assert!((o.resistance(0.into(), 3.into()) - 1.75).abs() < 1e-12);
        assert!((o.resistance(1.into(), 3.into()) - 0.75).abs() < 1e-12);
        assert!((o.resistance(2.into(), 2.into())).abs() < 1e-12);
    }

    #[test]
    fn tree_edges_have_stretch_one() {
        let g =
            Graph::from_edges(5, &[(0, 1, 2.0), (1, 2, 3.0), (2, 3, 1.0), (3, 4, 5.0)]).unwrap();
        let t = kruskal_tree(&g, TreeObjective::MaxWeight).unwrap();
        let o = TreePathResistance::new(&g, &t.tree);
        for e in g.edges() {
            assert!((o.distortion(e.u, e.v, e.weight) - 1.0).abs() < 1e-12);
        }
        assert!((o.total_stretch(&g) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn off_tree_edge_distortion_is_cycle_ratio() {
        // Triangle: tree keeps the two heavy edges; the light edge's
        // distortion is w·(1/2 + 1/2) = 0.5 · 1 = 0.5.
        let g = Graph::from_edges(3, &[(0, 1, 2.0), (1, 2, 2.0), (0, 2, 0.5)]).unwrap();
        let t = kruskal_tree(&g, TreeObjective::MaxWeight).unwrap();
        let o = TreePathResistance::new(&g, &t.tree);
        assert!((o.distortion(0.into(), 2.into(), 0.5) - 0.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_resistance_is_a_metric_on_random_trees(
            shape in proptest::collection::vec((0usize..1000, 0.1f64..10.0), 2..40),
            queries in proptest::collection::vec((0usize..41, 0usize..41, 0usize..41), 1..20),
        ) {
            let n = shape.len() + 1;
            let mut parent = vec![0u32];
            let mut weight = vec![0.0f64];
            for (i, (r, w)) in shape.iter().enumerate() {
                parent.push((r % (i + 1)) as u32);
                weight.push(*w);
            }
            let t = Tree::from_parent(0.into(), parent, weight).unwrap();
            let o = TreePathResistance::from_tree(&t);
            for (a, b, c) in queries {
                let (u, v, w) = (NodeId::new(a % n), NodeId::new(b % n), NodeId::new(c % n));
                // Symmetry.
                prop_assert!((o.resistance(u, v) - o.resistance(v, u)).abs() < 1e-9);
                // Identity.
                prop_assert!(o.resistance(u, u).abs() < 1e-12);
                // Triangle inequality (exact on trees).
                prop_assert!(o.resistance(u, v) + o.resistance(v, w) >= o.resistance(u, w) - 1e-9);
            }
        }
    }
}
