//! Graph substrate for the inGRASS reproduction.
//!
//! Everything the sparsification algorithms need from a graph library, built
//! from scratch:
//!
//! * [`Graph`] — an immutable weighted undirected graph in CSR adjacency
//!   form, with Laplacian/adjacency matrix export (via `ingrass-linalg`).
//! * [`DynGraph`] — a mutable graph with stable edge ids supporting the
//!   incremental operations inGRASS performs on the sparsifier: insert edge,
//!   add weight to an existing edge, query edge between endpoints.
//! * [`Tree`] / [`TreeResult`] — rooted spanning trees with parent arrays and
//!   preorder, produced by [`kruskal_tree`] (max/min weight),
//!   [`effective_weight_tree`] (feGRASS-flavoured) and [`low_stretch_tree`]
//!   (AKPW/MPX-flavoured ball-growing).
//! * [`LcaIndex`] — Euler tour + sparse-table lowest common ancestor in
//!   `O(1)` per query.
//! * [`TreePathResistance`] — tree-path effective resistances and the
//!   *spectral distortion* `w(e)·R_tree(e)` that drives GRASS-style off-tree
//!   edge ranking.
//! * [`TreeLaplacianSolver`] / [`TreePrecond`] — exact `O(n)` solves with a
//!   spanning-tree Laplacian, used as the support-graph preconditioner for CG
//!   on full graph Laplacians.
//! * [`quotient_graph`] — cluster contraction with conductance-summing of
//!   parallel edges, used by the low-stretch tree recursion and mirrored by
//!   the LRD decomposition in the core crate.
//!
//! # Example
//!
//! ```
//! use ingrass_graph::{Graph, kruskal_tree, TreeObjective, TreePathResistance};
//!
//! // A weighted triangle.
//! let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 0.5)]).unwrap();
//! let t = kruskal_tree(&g, TreeObjective::MaxWeight).unwrap();
//! // The max-weight tree keeps the two unit edges.
//! assert_eq!(t.in_tree.iter().filter(|&&b| b).count(), 2);
//! let res = TreePathResistance::new(&g, &t.tree);
//! // Tree-path resistance between 0 and 2 goes through node 1: 1 + 1 = 2.
//! assert!((res.resistance(0.into(), 2.into()) - 2.0).abs() < 1e-12);
//! ```

#![deny(missing_docs)]

mod contract;
mod dsu;
mod dyngraph;
mod error;
mod graph;
mod ids;
mod lca;
mod lsst;
mod mst;
mod traversal;
mod tree;
mod treeres;
mod treesolve;

pub use contract::quotient_graph;
pub use dsu::DisjointSets;
pub use dyngraph::DynGraph;
pub use error::GraphError;
pub use graph::{Adjacency, Graph, GraphBuilder};
pub use ids::{Edge, EdgeId, NodeId};
pub use lca::LcaIndex;
pub use lsst::{effective_weight_tree, low_stretch_tree};
pub use mst::{kruskal_tree, TreeObjective};
pub use traversal::{bfs_order, connected_components, is_connected};
pub use tree::{Tree, TreeResult};
pub use treeres::TreePathResistance;
pub use treesolve::{TreeLaplacianSolver, TreePrecond};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
