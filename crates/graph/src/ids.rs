//! Strongly-typed node and edge identifiers.

use std::fmt;

/// Identifier of a node (vertex) in a graph.
///
/// A thin `u32` newtype: node ids are array indices everywhere in this
/// workspace, and the newtype keeps them from being confused with edge ids
/// or cluster ids.
///
/// # Example
/// ```
/// use ingrass_graph::NodeId;
/// let u = NodeId::new(3);
/// assert_eq!(u.index(), 3);
/// assert_eq!(u, 3.into());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from an index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "node index overflows u32");
        NodeId(index as u32)
    }

    /// The id as a `usize` array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId::new(v)
    }
}

impl From<i32> for NodeId {
    /// Conversion from literals for ergonomics (`0.into()`).
    ///
    /// # Panics
    /// Panics if `v` is negative.
    fn from(v: i32) -> Self {
        assert!(v >= 0, "node index must be non-negative");
        NodeId(v as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an (undirected) edge in a graph.
///
/// Edge ids are stable: [`crate::DynGraph`] never reuses them, so they can be
/// held across incremental updates (inGRASS stores a *representative edge id*
/// per connected cluster pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from an index.
    ///
    /// # Panics
    /// Panics (in debug) if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "edge index overflows u32");
        EdgeId(index as u32)
    }

    /// The id as a `usize` array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for EdgeId {
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

impl From<usize> for EdgeId {
    fn from(v: usize) -> Self {
        EdgeId::new(v)
    }
}

impl From<i32> for EdgeId {
    /// Conversion from literals for ergonomics (`0.into()`).
    ///
    /// # Panics
    /// Panics if `v` is negative.
    fn from(v: i32) -> Self {
        assert!(v >= 0, "edge index must be non-negative");
        EdgeId(v as u32)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A weighted undirected edge.
///
/// Stored in canonical orientation `u < v`; the weight is a positive
/// conductance (resistance is `1/weight`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: NodeId,
    /// Larger endpoint.
    pub v: NodeId,
    /// Positive weight (conductance).
    pub weight: f64,
}

impl Edge {
    /// Creates an edge, canonicalising the endpoint order.
    pub fn new(u: NodeId, v: NodeId, weight: f64) -> Self {
        if u <= v {
            Edge { u, v, weight }
        } else {
            Edge { u: v, v: u, weight }
        }
    }

    /// The edge's resistance `1/weight`.
    #[inline]
    pub fn resistance(&self) -> f64 {
        1.0 / self.weight
    }

    /// The endpoint opposite to `x`.
    ///
    /// # Panics
    /// Panics if `x` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else {
            assert_eq!(x, self.v, "node {x} is not an endpoint");
            self.u
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} — {}, w={})", self.u, self.v, self.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips() {
        let u = NodeId::new(42);
        assert_eq!(u.index(), 42);
        assert_eq!(u.raw(), 42);
        assert_eq!(NodeId::from(42u32), u);
        assert_eq!(NodeId::from(42usize), u);
        assert_eq!(u.to_string(), "n42");
    }

    #[test]
    fn edge_canonicalises_order() {
        let e = Edge::new(5.into(), 2.into(), 1.5);
        assert_eq!(e.u, NodeId::new(2));
        assert_eq!(e.v, NodeId::new(5));
        assert_eq!(e.other(2.into()), NodeId::new(5));
        assert_eq!(e.other(5.into()), NodeId::new(2));
    }

    #[test]
    fn edge_resistance_is_reciprocal_weight() {
        let e = Edge::new(0.into(), 1.into(), 4.0);
        assert_eq!(e.resistance(), 0.25);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_panics_for_non_endpoint() {
        let e = Edge::new(0.into(), 1.into(), 1.0);
        e.other(2.into());
    }
}
